//! Instrumented synchronisation primitives: the model-backed twins of
//! [`ajd-sync`](https://example.invalid/ajd)'s facade types.
//!
//! Each primitive has two modes, decided per call by whether the calling
//! OS thread is a virtual thread of an active model run:
//!
//! * **modelled** — every acquire/wait/notify/load is a scheduling point
//!   routed through the crate's scheduler, so the explorer can interleave
//!   threads around it; blocking is virtual (the runtime parks the thread
//!   and the controller explores who runs next);
//! * **fallback** — outside a model run the primitive behaves exactly like
//!   its `std::sync` counterpart (the `std` object it wraps does the
//!   work).  This keeps a `--cfg ajd_model` build fully functional for
//!   ordinary tests: only code *inside* `Model::check` bodies is explored.
//!
//! Mutual exclusion is always enforced by the wrapped `std` object in both
//! modes, so the data access itself is sound either way; what the modelled
//! mode adds is *virtual* blocking and exhaustive interleaving of it.
//!
//! All lock APIs are **poison-free by construction**: a panicking holder
//! aborts the model run (modelled mode) or propagates the panic without
//! poisoning the lock for later holders (fallback mode, like
//! `parking_lot`).  This is what lets the ported call sites drop their
//! `expect("poisoned")` boilerplate.

// ajd: allow-file(raw-sync-primitive, "these are the instrumented primitives themselves: each wraps a std::sync object for the data path and adds virtual scheduling on top, so this file is the one place raw primitives are constructed by design")

use crate::runtime::{self, Block, Handle};
use std::sync::atomic::{AtomicBool as StdAtomicBool, AtomicU8};
use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock, PoisonError,
    RwLock as StdRwLock, RwLockReadGuard as StdRwLockReadGuard,
    RwLockWriteGuard as StdRwLockWriteGuard,
};

/// Lazily assigns this primitive its per-run object id.
fn object_id(slot: &OnceLock<usize>, handle: &Handle) -> usize {
    *slot.get_or_init(|| handle.rt.new_object_id())
}

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/// A mutual-exclusion lock with a poison-free API; modelled under an
/// active run, `std`-backed otherwise.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    id: OnceLock<usize>,
    /// Model-level ownership flag (only meaningful in modelled mode,
    /// where at most one virtual thread runs at a time).
    held: StdAtomicBool,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            id: OnceLock::new(),
            held: StdAtomicBool::new(false),
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking (virtually, under a model run) until
    /// it is available.  Never observes poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        use std::sync::atomic::Ordering::Relaxed;
        if let Some(h) = runtime::current() {
            let id = object_id(&self.id, &h);
            // Choice point before the acquire attempt: lets the explorer
            // interleave a competitor here.
            h.rt.yield_runnable(h.me);
            while self.held.load(Relaxed) {
                h.rt.yield_as(h.me, Block::Lock(id));
            }
            self.held.store(true, Relaxed);
        }
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            lock: self,
            inner: Some(inner),
        }
    }

    /// Model-level release: clears the ownership flag and wakes waiters.
    /// No-op outside a model run (dropping the `std` guard suffices).
    fn release(&self) {
        use std::sync::atomic::Ordering::Relaxed;
        if let Some(h) = runtime::current() {
            let id = object_id(&self.id, &h);
            self.held.store(false, Relaxed);
            h.rt.wake(Block::Lock(id));
        }
    }
}

/// An RAII guard for [`Mutex`]; releases the lock on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the data lock first, then the model-level ownership, so
        // a woken competitor can immediately take the std lock.
        self.inner.take();
        self.lock.release();
    }
}

// ---------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------

/// A condition variable paired with [`Mutex`]; wait/notify are scheduling
/// points under a model run, and `notify_one` with several waiters is a
/// *decision* the explorer enumerates (real condvars promise no order).
#[derive(Debug, Default)]
pub struct Condvar {
    id: OnceLock<usize>,
    inner: StdCondvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar {
            id: OnceLock::new(),
            inner: StdCondvar::new(),
        }
    }

    /// Atomically releases `guard`'s mutex and waits for a notification,
    /// then re-acquires the mutex.  Like `std`, spurious wakeups are
    /// permitted (the model's deadlock probe exploits exactly that
    /// license), so callers must re-check their condition in a loop — or
    /// use [`Condvar::wait_while`].
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        if let Some(h) = runtime::current() {
            let cv = object_id(&self.id, &h);
            let lock = guard.lock;
            // Dropping the guard releases the mutex and wakes lock
            // waiters; no scheduling point runs between that and the
            // registration as a condvar waiter below, so a notify cannot
            // slip into the gap (release-and-sleep is atomic, as std
            // guarantees).
            drop(guard);
            h.rt.condvar_wait(h.me, cv);
            return lock.lock();
        }
        // Fallback: genuine std wait on the inner condvar/mutex pair.
        let lock = guard.lock;
        let std_guard = guard.inner.take().expect("guard accessed after release");
        drop(guard); // model release is a no-op outside a run
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            lock,
            inner: Some(std_guard),
        }
    }

    /// Waits until `condition` returns `false` (i.e. waits *while* it
    /// holds), re-checking on every wakeup.
    pub fn wait_while<'a, T, F>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: F,
    ) -> MutexGuard<'a, T>
    where
        F: FnMut(&mut T) -> bool,
    {
        while condition(&mut guard) {
            guard = self.wait(guard);
        }
        guard
    }

    /// Wakes one waiter, if any.  With several waiters the model explores
    /// every possible recipient.
    pub fn notify_one(&self) {
        if let Some(h) = runtime::current() {
            let cv = object_id(&self.id, &h);
            h.rt.notify_one(cv);
            return;
        }
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        if let Some(h) = runtime::current() {
            let cv = object_id(&self.id, &h);
            h.rt.notify_all(cv);
            return;
        }
        self.inner.notify_all();
    }
}

// ---------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------

/// A reader–writer lock with a poison-free API; modelled under an active
/// run, `std`-backed otherwise.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    id: OnceLock<usize>,
    /// Model-level reader count (modelled mode only).
    readers: std::sync::atomic::AtomicUsize,
    /// Model-level writer flag (modelled mode only).
    writer: StdAtomicBool,
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            id: OnceLock::new(),
            readers: std::sync::atomic::AtomicUsize::new(0),
            writer: StdAtomicBool::new(false),
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        use std::sync::atomic::Ordering::Relaxed;
        if let Some(h) = runtime::current() {
            let id = object_id(&self.id, &h);
            h.rt.yield_runnable(h.me);
            while self.writer.load(Relaxed) {
                h.rt.yield_as(h.me, Block::RwRead(id));
            }
            self.readers.fetch_add(1, Relaxed);
        }
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        RwLockReadGuard {
            lock: self,
            inner: Some(inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        use std::sync::atomic::Ordering::Relaxed;
        if let Some(h) = runtime::current() {
            let id = object_id(&self.id, &h);
            h.rt.yield_runnable(h.me);
            while self.writer.load(Relaxed) || self.readers.load(Relaxed) > 0 {
                h.rt.yield_as(h.me, Block::RwWrite(id));
            }
            self.writer.store(true, Relaxed);
        }
        let inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        RwLockWriteGuard {
            lock: self,
            inner: Some(inner),
        }
    }

    fn release_read(&self) {
        use std::sync::atomic::Ordering::Relaxed;
        if let Some(h) = runtime::current() {
            let id = object_id(&self.id, &h);
            if self.readers.fetch_sub(1, Relaxed) == 1 {
                h.rt.wake(Block::RwWrite(id));
            }
        }
    }

    fn release_write(&self) {
        use std::sync::atomic::Ordering::Relaxed;
        if let Some(h) = runtime::current() {
            let id = object_id(&self.id, &h);
            self.writer.store(false, Relaxed);
            h.rt.wake(Block::RwRead(id));
            h.rt.wake(Block::RwWrite(id));
        }
    }
}

/// Shared-access RAII guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<StdRwLockReadGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        self.lock.release_read();
    }
}

/// Exclusive-access RAII guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<StdRwLockWriteGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        self.lock.release_write();
    }
}

// ---------------------------------------------------------------------
// OnceSlot
// ---------------------------------------------------------------------

/// Once-slot states for the modelled single-flight protocol.
const ONCE_EMPTY: u8 = 0;
const ONCE_RUNNING: u8 = 1;
const ONCE_FULL: u8 = 2;

/// A write-once cell with single-flight initialisation — the primitive
/// under the workspace's memoization slots.
///
/// `get_or_init` guarantees the initialiser runs **at most once** even
/// when raced: one caller (the leader) computes, every other caller
/// blocks on the slot until the value lands.  Under a model run the
/// leader election and the blocking are scheduling points, so the
/// explorer exercises every race on the slot; a double-compute can then
/// only arise from a caller *bypassing* the slot, which is exactly the
/// bug class the single-flight model tests pin.
#[derive(Debug)]
pub struct OnceSlot<T> {
    id: OnceLock<usize>,
    /// Modelled-mode state machine (empty → running → full).
    state: AtomicU8,
    inner: OnceLock<T>,
}

impl<T> Default for OnceSlot<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> OnceSlot<T> {
    /// Creates an empty slot.
    pub fn new() -> Self {
        OnceSlot {
            id: OnceLock::new(),
            state: AtomicU8::new(ONCE_EMPTY),
            inner: OnceLock::new(),
        }
    }

    /// The value, if initialisation has completed.
    pub fn get(&self) -> Option<&T> {
        if let Some(h) = runtime::current() {
            // Reading the slot is a scheduling point: racers may complete
            // (or not yet have started) the initialisation here.
            h.rt.yield_runnable(h.me);
        }
        self.inner.get()
    }

    /// Returns the value, initialising it with `init` if the slot is
    /// empty; at most one caller ever runs `init`.
    pub fn get_or_init(&self, init: impl FnOnce() -> T) -> &T {
        use std::sync::atomic::Ordering::Relaxed;
        let Some(h) = runtime::current() else {
            return self.inner.get_or_init(init);
        };
        let id = object_id(&self.id, &h);
        h.rt.yield_runnable(h.me);
        loop {
            if let Some(v) = self.inner.get() {
                return v;
            }
            match self
                .state
                .compare_exchange(ONCE_EMPTY, ONCE_RUNNING, Relaxed, Relaxed)
            {
                Ok(_) => {
                    // Leader: compute (the closure may itself hit
                    // scheduling points), publish, wake the followers.
                    let value = init();
                    let _ = self.inner.set(value);
                    self.state.store(ONCE_FULL, Relaxed);
                    h.rt.wake(Block::Once(id));
                    return self.inner.get().expect("slot just filled by leader");
                }
                Err(_) => {
                    // Follower: virtually block until the leader lands.
                    h.rt.yield_as(h.me, Block::Once(id));
                }
            }
        }
    }

    /// Sets the value if the slot is empty; returns `Err(value)` if it
    /// was already set (or a leader is mid-initialisation).
    pub fn set(&self, value: T) -> Result<(), T> {
        use std::sync::atomic::Ordering::Relaxed;
        if let Some(h) = runtime::current() {
            let id = object_id(&self.id, &h);
            h.rt.yield_runnable(h.me);
            if self
                .state
                .compare_exchange(ONCE_EMPTY, ONCE_RUNNING, Relaxed, Relaxed)
                .is_err()
            {
                return Err(value);
            }
            // The inner cell may already hold a value written through the
            // fallback path (e.g. by a real worker thread outside the
            // model); honour it.
            let outcome = self.inner.set(value);
            self.state.store(ONCE_FULL, Relaxed);
            h.rt.wake(Block::Once(id));
            return outcome;
        }
        self.inner.set(value)
    }

    /// The value, through exclusive access (no scheduling point: `&mut`
    /// proves no concurrent initialisation is possible).
    pub fn get_mut(&mut self) -> Option<&mut T> {
        self.inner.get_mut()
    }

    /// Consumes the slot and returns the value, if any.
    pub fn into_inner(self) -> Option<T> {
        self.inner.into_inner()
    }
}

impl<T: Clone> Clone for OnceSlot<T> {
    /// Clones the slot's *value* into a fresh slot with its own model
    /// identity (a clone mid-initialisation observes an empty slot).
    fn clone(&self) -> Self {
        use std::sync::atomic::Ordering::Relaxed;
        let slot = OnceSlot::new();
        if let Some(v) = self.inner.get() {
            let _ = slot.inner.set(v.clone());
            slot.state.store(ONCE_FULL, Relaxed);
        }
        slot
    }
}

// ---------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------

pub use std::sync::atomic::Ordering;

/// Declares a modelled atomic wrapper: every access is a scheduling point
/// under a run, and the real operation is delegated to the `std` atomic
/// (runs are serialized, so sequential consistency is automatic — the
/// `Ordering` argument is accepted for API compatibility but exploration
/// is always SC).
macro_rules! modelled_atomic {
    ($(#[$doc:meta])* $name:ident, $std:ty, $prim:ty) => {
        $(#[$doc])*
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// Creates a new atomic with the given initial value.
            pub const fn new(value: $prim) -> Self {
                Self { inner: <$std>::new(value) }
            }

            fn touch(&self) {
                if let Some(h) = runtime::current() {
                    h.rt.yield_runnable(h.me);
                }
            }

            /// Loads the value (a scheduling point under a model run).
            pub fn load(&self, order: Ordering) -> $prim {
                self.touch();
                self.inner.load(order)
            }

            /// Stores `value` (a scheduling point under a model run).
            pub fn store(&self, value: $prim, order: Ordering) {
                self.touch();
                self.inner.store(value, order);
            }

            /// Swaps in `value`, returning the previous value.
            pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                self.touch();
                self.inner.swap(value, order)
            }

            /// Consumes the atomic and returns the value.
            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }
        }

        impl From<$prim> for $name {
            fn from(value: $prim) -> Self {
                Self::new(value)
            }
        }
    };
}

modelled_atomic!(
    /// Modelled `AtomicBool`: accesses are scheduling points under a run.
    AtomicBool,
    std::sync::atomic::AtomicBool,
    bool
);
modelled_atomic!(
    /// Modelled `AtomicUsize`: accesses are scheduling points under a run.
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);
modelled_atomic!(
    /// Modelled `AtomicU64`: accesses are scheduling points under a run.
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);

macro_rules! modelled_fetch_ops {
    ($name:ident, $prim:ty) => {
        impl $name {
            /// Adds to the value, returning the previous value.
            pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                self.touch();
                self.inner.fetch_add(value, order)
            }

            /// Subtracts from the value, returning the previous value.
            pub fn fetch_sub(&self, value: $prim, order: Ordering) -> $prim {
                self.touch();
                self.inner.fetch_sub(value, order)
            }

            /// Compare-and-exchange; see `std::sync::atomic`.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.touch();
                self.inner.compare_exchange(current, new, success, failure)
            }
        }
    };
}

modelled_fetch_ops!(AtomicUsize, usize);
modelled_fetch_ops!(AtomicU64, u64);
