//! Model-checked invariants for the admission pools and shutdown token.
//!
//! Compiled only under `RUSTFLAGS="--cfg ajd_model"` (the CI `model-check`
//! job).  Bodies run once per explored schedule: keep them small, never
//! poll in a loop, and route all blocking through `ajd_sync` so the
//! scheduler sees every decision point.  `docs/CONCURRENCY.md` documents
//! the wakeup subtleties these tests pin down.
#![cfg(ajd_model)]

use ajd_model::{Model, ViolationKind};
use ajd_server::{Pool, ShutdownToken};
use ajd_sync::Mutex;

/// Three requests contending for one slot: the slot budget is never
/// overrun, nobody is rejected (the queue is deep enough), and queued
/// requests are admitted strictly in ticket (arrival) order.
fn fifo_body() {
    let pool = Pool::new(1, 4);
    let order: Mutex<Vec<(Option<u64>, u64)>> = Mutex::new(Vec::new());
    ajd_sync::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(|| {
                let guard = pool.admit().expect("queue depth 4 cannot reject 3");
                let record = (guard.queued_ticket(), guard.admission_seq());
                drop(guard);
                order.lock().push(record);
            });
        }
    });
    let stats = pool.stats();
    assert!(stats.peak_in_flight <= 1, "slot budget overrun: {stats:?}");
    assert_eq!(stats.admitted, 3);
    assert_eq!(stats.in_flight, 0);
    assert_eq!(stats.waiting, 0);
    // Among the requests that had to queue, admission order must follow
    // ticket order: a freed slot always goes to the lowest ticket.
    let mut queued: Vec<(u64, u64)> = order
        .lock()
        .iter()
        .filter_map(|(ticket, seq)| ticket.map(|t| (t, *seq)))
        .collect();
    queued.sort_unstable();
    assert!(
        queued.windows(2).all(|w| w[0].1 < w[1].1),
        "barging: admission order diverged from ticket order: {queued:?}"
    );
}

#[test]
fn slot_budget_and_fifo_hold_under_all_interleavings() {
    let report = Model::new()
        .max_schedules(4_000)
        .preemption_bound(2)
        .explore(fifo_body);
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(
        report.schedules >= 100,
        "expected a real exploration, got {} schedules",
        report.schedules
    );
}

/// Shutdown racing in-flight work: whatever the interleaving, every
/// admitted request releases its slot, the flag is observed, and nothing
/// deadlocks (the explorer flags any schedule where a thread stays
/// blocked).
#[test]
fn shutdown_drains_without_deadlock() {
    let report = Model::new()
        .max_schedules(4_000)
        .preemption_bound(2)
        .explore(|| {
            let token = ShutdownToken::new();
            let pool = Pool::new(1, 2);
            ajd_sync::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        // A worker ignores the flag once admitted; shutdown
                        // is drain-based, not preemptive.
                        let guard = pool.admit().expect("queue holds both");
                        drop(guard);
                    });
                }
                s.spawn(|| token.request());
            });
            assert!(token.is_signalled());
            let stats = pool.stats();
            assert_eq!(stats.in_flight, 0, "drain left a slot held: {stats:?}");
            assert_eq!(stats.waiting, 0);
        });
    assert!(report.violation.is_none(), "{:?}", report.violation);
}

/// The seeded mutant (slot released without a notify) must be caught as a
/// missed wakeup: some interleaving leaves the queued request asleep with
/// a free slot it could take.
fn mutant_body() {
    let pool = Pool::new(1, 2);
    ajd_sync::thread::scope(|s| {
        s.spawn(|| {
            let guard = pool.admit().expect("first in");
            Pool::mutant_release_without_notify(guard);
        });
        s.spawn(|| {
            let guard = pool.admit().expect("queue holds it");
            drop(guard);
        });
    });
}

#[test]
fn dropped_release_notify_is_caught_and_replayable() {
    let model = Model::new().max_schedules(20_000).preemption_bound(2);
    let report = model.explore(mutant_body);
    let violation = report
        .violation
        .expect("the explorer must catch the dropped notify");
    assert_eq!(violation.kind, ViolationKind::MissedWakeup);
    let replayed = model
        .replay(&violation.schedule, mutant_body)
        .expect("recorded schedule must reproduce the violation");
    assert_eq!(replayed.kind, ViolationKind::MissedWakeup);
}

/// Rejection is deterministic under contention: with a zero-depth queue,
/// a request that finds the slot taken is turned away (never blocked),
/// and the reject counter accounts for it.
#[test]
fn zero_depth_queue_rejects_instead_of_blocking() {
    let report = Model::new()
        .max_schedules(4_000)
        .preemption_bound(2)
        .explore(|| {
            let pool = Pool::new(1, 0);
            let outcomes = Mutex::new([false; 2]);
            ajd_sync::thread::scope(|s| {
                for i in 0..2 {
                    let outcomes = &outcomes;
                    let pool = &pool;
                    s.spawn(move || {
                        let admitted = pool.admit().is_some();
                        outcomes.lock()[i] = admitted;
                    });
                }
            });
            let stats = pool.stats();
            let admitted = outcomes.lock().iter().filter(|&&a| a).count() as u64;
            assert_eq!(stats.admitted, admitted);
            assert_eq!(stats.rejected, 2 - admitted);
            assert!(admitted >= 1, "at least one request must win the slot");
        });
    assert!(report.violation.is_none(), "{:?}", report.violation);
}
