//! Tier-1 enforcement of the `ajd-lint` pass: `cargo test` at the
//! workspace root fails if any source file violates the determinism &
//! counting rules without a written waiver.
//!
//! This is the same check as `cargo run -p ajd-lint -- --deny` and the CI
//! `lint` job; wiring it into the default test suite means the pass cannot
//! be forgotten.  The rule catalog lives in `docs/LINTS.md`.

use std::path::Path;

/// The workspace root: this file lives at `<root>/tests/`, and the `ajd`
/// facade package's manifest dir IS the workspace root.
fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_lint_clean() {
    let report = ajd_lint::lint_workspace(workspace_root()).expect("workspace must be walkable");
    // Sanity: the walk actually visited the workspace (a wrong root would
    // vacuously pass).
    assert!(
        report.files > 50,
        "only {} files scanned — lint walked the wrong root?",
        report.files
    );
    assert!(
        report.is_clean(),
        "the workspace has unwaived lint findings; fix them or add \
         `// ajd: allow(rule-id, \"reason\")` with a real justification:\n{}",
        report.render_text()
    );
}

#[test]
fn every_waiver_carries_a_written_reason() {
    let report = ajd_lint::lint_workspace(workspace_root()).expect("workspace must be walkable");
    // The engine already rejects reason-less waivers as malformed; this
    // pins the audit trail end-to-end: every recorded waiver has a
    // non-trivial justification.
    assert!(
        !report.waived.is_empty(),
        "the workspace is expected to carry documented waivers (hash mixing, \
         capacity heuristics, mutex poisoning); none were found — did waiver \
         parsing break?"
    );
    for w in &report.waived {
        assert!(
            w.reason.trim().len() >= 10,
            "waiver at {}:{} has a throwaway reason {:?}; write the actual \
             argument down",
            w.finding.path,
            w.finding.line,
            w.reason
        );
    }
}
