//! Model-checked invariants for the striped single-flight analysis cache.
//!
//! These tests only compile under `RUSTFLAGS="--cfg ajd_model"`; the CI
//! `model-check` job runs them.  Each body is executed once per explored
//! schedule, so it must be cheap, deterministic, and free of polling loops
//! (a spin loop explores schedules that spin forever and trips the op
//! budget).  See `docs/CONCURRENCY.md` for the memory model and the
//! replay workflow.
#![cfg(ajd_model)]

use ajd_model::{Model, ViolationKind};
use ajd_relation::{AnalysisContext, AttrId, AttrSet, Relation, ThreadBudget};

fn sample() -> Relation {
    Relation::from_rows(
        vec![AttrId(0), AttrId(1)],
        &[&[0, 0][..], &[0, 1][..], &[1, 0][..]],
    )
    .unwrap()
}

/// Three racers hitting one cold key: under *every* interleaving exactly
/// one of them computes (the single-flight leader) and the other two are
/// served from the slot.
fn single_flight_body() {
    let r = sample();
    // Serial budget: model bodies must not spawn kernel worker threads —
    // the scheduler cannot see them, so their interleavings would go
    // unexplored (and they slow every schedule down).
    let ctx = AnalysisContext::with_thread_budget(&r, ThreadBudget::serial());
    let y = AttrSet::singleton(AttrId(0));
    ajd_sync::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(|| {
                let counts = ctx.group_counts(&y).expect("grouping cannot fail");
                assert_eq!(counts.num_groups(), 2);
            });
        }
    });
    let stats = ctx.stats();
    assert_eq!(
        stats.misses, 1,
        "single flight: exactly one compute per cold key, got {stats:?}"
    );
    assert_eq!(
        stats.hits, 2,
        "the two followers must be served from the slot"
    );
    assert_eq!(stats.group_count_entries, 1);
}

#[test]
fn cold_key_is_computed_exactly_once_under_all_interleavings() {
    let report = Model::new()
        .max_schedules(2_000)
        .preemption_bound(2)
        .explore(single_flight_body);
    assert!(
        report.violation.is_none(),
        "single-flight invariant violated: {:?}",
        report.violation
    );
    // The cache involves real lock/atomic traffic, so even the bounded
    // space is rich; make sure the run was a genuine exploration and not
    // a handful of schedules.
    assert!(
        report.schedules >= 100,
        "expected a real exploration, got {} schedules",
        report.schedules
    );
}

/// The seeded mutant (single-flight slot removed, check-then-compute
/// against the shard map) must be caught: some interleaving lets two
/// racers both observe the key cold and both run the kernel.
fn mutant_body() {
    let r = sample();
    let ctx = AnalysisContext::with_thread_budget(&r, ThreadBudget::serial());
    let y = AttrSet::singleton(AttrId(0));
    ajd_sync::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                ctx.mutant_group_counts_no_single_flight(&y)
                    .expect("grouping cannot fail");
            });
        }
    });
    assert_eq!(
        ctx.stats().misses,
        1,
        "double compute: the mutant let two racers run the kernel"
    );
}

#[test]
fn removed_single_flight_slot_is_caught_and_replayable() {
    let model = Model::new().max_schedules(20_000).preemption_bound(2);
    let report = model.explore(mutant_body);
    let violation = report
        .violation
        .expect("the explorer must catch the removed single-flight slot");
    assert_eq!(violation.kind, ViolationKind::Panic);
    assert!(
        violation.message.contains("double compute"),
        "unexpected failure: {violation}"
    );
    // The recorded schedule must reproduce the same violation on its own.
    let replayed = model
        .replay(&violation.schedule, mutant_body)
        .expect("recorded schedule must reproduce the violation");
    assert_eq!(replayed.kind, ViolationKind::Panic);
}

/// A warm key is pure cache traffic: no interleaving of readers can
/// recompute it or corrupt the counters.
#[test]
fn warm_key_readers_never_recompute() {
    let report = Model::new()
        .max_schedules(2_000)
        .preemption_bound(2)
        .explore(|| {
            let r = sample();
            let ctx = AnalysisContext::with_thread_budget(&r, ThreadBudget::serial());
            let y = AttrSet::singleton(AttrId(1));
            ctx.group_counts(&y).unwrap(); // warm it on the root thread
            ajd_sync::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        ctx.group_counts(&y).unwrap();
                    });
                }
            });
            let stats = ctx.stats();
            assert_eq!(stats.misses, 1);
            assert_eq!(stats.hits, 2);
        });
    assert!(report.violation.is_none(), "{:?}", report.violation);
}
