//! Experiment `prop51_chain` — Proposition 5.1: the J-measure of an acyclic
//! schema is bounded by the per-MVD losses of its support,
//! `J(R,S) ≤ Σᵢ log(1+ρ(R,φᵢ))`.
//!
//! We evaluate path- and star-shaped schemas with a growing number of bags
//! over random relations and report both sides of the inequality and the
//! violation rate (always zero — the bound is deterministic).  For contrast
//! the table also reports `log(1+ρ(R,S))`, which does *not* respect the
//! per-MVD sum in general.

use ajd_bench::harness::{parallel_trials, ExperimentArgs};
use ajd_bench::stats::{fraction_where, Summary};
use ajd_bench::table::{f, Table};
use ajd_core::Analyzer;
use ajd_jointree::JoinTree;
use ajd_random::{ProductDomain, RandomRelationModel};
use ajd_relation::{AttrSet, ThreadBudget};

fn pair_bags(m: usize) -> Vec<AttrSet> {
    // m bags over m+1 attributes: {X0X1, X1X2, ..., X_{m-1}X_m}.
    (0..m)
        .map(|i| AttrSet::from_ids([i as u32, i as u32 + 1]))
        .collect()
}

fn star_bags(m: usize) -> Vec<AttrSet> {
    // m bags over m+1 attributes: {X0X1, X0X2, ..., X0X_m}.
    (1..=m)
        .map(|i| AttrSet::from_ids([0u32, i as u32]))
        .collect()
}

fn main() {
    let args = ExperimentArgs::from_env();
    let ms: Vec<usize> = if args.quick {
        vec![3, 5]
    } else {
        vec![2, 3, 4, 5, 6]
    };
    let domain_per_attr = 6u64;

    let mut table = Table::new(
        "Proposition 5.1: J(S) vs sum_i log(1+rho(phi_i)) (nats)",
        &[
            "shape",
            "m_bags",
            "N",
            "J_mean",
            "rhs_mean",
            "ratio",
            "log1p_rho_mean",
            "violations",
        ],
    );

    for &m in &ms {
        for (shape, bags) in [("path", pair_bags(m)), ("star", star_bags(m))] {
            let tree = JoinTree::from_acyclic_schema(&bags).expect("acyclic by construction");
            let dims = vec![domain_per_attr; m + 1];
            let domain = ProductDomain::new(dims).unwrap();
            // Half-fill the domain, capped at 400 tuples so larger trees stay fast.
            let n = (domain.size() / 2).min(400);
            let model = RandomRelationModel::new(domain);
            let rows = parallel_trials(args.trials, args.seed ^ ((m as u64) << 4), |_, rng| {
                let r = model.sample(rng, n).expect("N within domain");
                // Trials already own the machine's cores; serial kernel per trial.
                let rep = Analyzer::with_thread_budget(&r, ThreadBudget::serial())
                    .analyze(&tree)
                    .expect("analysis");
                (rep.j_measure, rep.prop51_bound, rep.log1p_rho)
            });
            let lhs: Vec<f64> = rows.iter().map(|(j, _, _)| *j).collect();
            let rhs: Vec<f64> = rows.iter().map(|(_, r, _)| *r).collect();
            let log1p: Vec<f64> = rows.iter().map(|(_, _, l)| *l).collect();
            let violations = fraction_where(&rows, |(j, r, _)| *j > *r + 1e-9);
            let lhs_mean = Summary::of(&lhs).mean;
            let rhs_mean = Summary::of(&rhs).mean;
            table.push_row(vec![
                shape.to_string(),
                m.to_string(),
                n.to_string(),
                f(lhs_mean),
                f(rhs_mean),
                f(if rhs_mean > 0.0 {
                    lhs_mean / rhs_mean
                } else {
                    1.0
                }),
                f(Summary::of(&log1p).mean),
                format!("{violations:.3}"),
            ]);
        }
    }

    table.emit(args.csv_dir.as_deref(), "prop51_chain");
    println!(
        "Paper's shape: violations are 0.000 everywhere; the ratio J/rhs stays below 1 and\n\
         decreases as the number of bags grows (the per-MVD sum becomes looser)."
    );
}
