//! Budget-aware admission control: separate pools for point queries and
//! mining sweeps.
//!
//! The server answers two very different workloads through the same caches:
//! *point queries* (`loss`, `j`, `entropy`, `analyze`) that are cheap once
//! the relevant groupings are memoized, and *mining sweeps* (`mine`) that
//! evaluate hundreds of candidate trees.  If both drew threads from one
//! pool, a burst of mining would occupy every slot and point queries would
//! time out behind it.  Instead, each workload class has its own
//! [`Pool`]: a fixed number of concurrent slots plus a bounded wait queue.
//! A request either takes a slot immediately, waits (FIFO via condvar) if
//! the queue has room, or is rejected with a `busy` error frame — the
//! server never buffers unbounded work.
//!
//! The pools bound *admission*; the kernel threads each admitted request
//! may use are bounded separately by the per-class
//! [`ThreadBudget`](ajd_relation::ThreadBudget) in
//! [`AdmissionConfig`] (`point_threads` / `mine_threads`), so the total
//! worst-case thread demand of the server is
//! `point_slots × point_threads + mine_slots × mine_threads`.

use ajd_sync::{Condvar, Mutex};

/// Sizing of the two admission pools and the per-request kernel budgets.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Concurrent point queries (`loss`/`j`/`entropy`/`analyze`).
    /// `catalog` and `stats` bypass admission entirely — they must stay
    /// answerable during a burst.
    pub point_slots: usize,
    /// Concurrent mining sweeps (`mine`).
    pub mine_slots: usize,
    /// Requests allowed to *wait* for a slot, per pool, beyond the slots
    /// themselves; the next one is rejected with `busy`.
    pub queue_depth: usize,
    /// Kernel [`ThreadBudget`](ajd_relation::ThreadBudget) each admitted
    /// point query computes cache misses under.
    pub point_threads: usize,
    /// Kernel thread budget each admitted mining sweep fans out over.
    pub mine_threads: usize,
}

impl Default for AdmissionConfig {
    /// Defaults sized for a small multi-core host: point queries get the
    /// slots (they are cheap and bursty, one kernel thread each), mining
    /// gets few slots but a real per-sweep budget.
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        AdmissionConfig {
            point_slots: cores.max(4),
            mine_slots: 2.min(cores),
            queue_depth: 64,
            point_threads: 1,
            mine_threads: (cores / 2).max(1),
        }
    }
}

impl AdmissionConfig {
    /// A config with every knob clamped to at least its minimum sensible
    /// value (slots ≥ 1, threads ≥ 1; a zero queue depth is legal and means
    /// "reject instead of waiting").
    pub fn clamped(self) -> Self {
        AdmissionConfig {
            point_slots: self.point_slots.max(1),
            mine_slots: self.mine_slots.max(1),
            queue_depth: self.queue_depth,
            point_threads: self.point_threads.max(1),
            mine_threads: self.mine_threads.max(1),
        }
    }
}

#[derive(Debug, Default)]
struct PoolState {
    in_flight: usize,
    waiting: usize,
    peak_in_flight: usize,
    admitted: u64,
    queued: u64,
    rejected: u64,
    /// Ticket of the waiter to admit next (the queue's head).
    wait_head: u64,
    /// Next ticket to hand out (the queue's tail).
    wait_tail: u64,
}

/// A point-in-time snapshot of one pool's counters, surfaced by the `stats`
/// frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Configured concurrent slots.
    pub slots: usize,
    /// Configured wait-queue depth.
    pub queue_depth: usize,
    /// Requests currently holding a slot.
    pub in_flight: usize,
    /// Requests currently waiting for a slot.
    pub waiting: usize,
    /// High-water mark of `in_flight` since startup — never exceeds
    /// `slots`, which is the observable guarantee that a burst in this
    /// class cannot overrun its budget.
    pub peak_in_flight: usize,
    /// Total requests admitted (immediately or after waiting).
    pub admitted: u64,
    /// Total requests that had to wait before being admitted.
    pub queued: u64,
    /// Total requests rejected with `busy`.
    pub rejected: u64,
}

/// One admission pool: `slots` concurrent permits and a bounded FIFO wait
/// queue of `queue_depth` requests.
#[derive(Debug)]
pub struct Pool {
    slots: usize,
    queue_depth: usize,
    state: Mutex<PoolState>,
    available: Condvar,
}

impl Pool {
    /// Creates a pool with `slots` concurrent permits (clamped to ≥ 1) and
    /// room for `queue_depth` waiters.
    pub fn new(slots: usize, queue_depth: usize) -> Self {
        Pool {
            slots: slots.max(1),
            queue_depth,
            state: Mutex::new(PoolState::default()),
            available: Condvar::new(),
        }
    }

    /// Tries to admit one request: returns a guard that releases the slot
    /// on drop, or `None` if every slot is taken *and* the wait queue is
    /// full (the caller should answer `busy`).  Blocks while queued.
    ///
    /// Queued requests are admitted **strictly FIFO** by wait-queue ticket:
    /// a newcomer never barges past a non-empty queue even when a slot is
    /// momentarily free (it takes the next ticket instead), and a freed
    /// slot goes to the lowest outstanding ticket.  Two model-checked
    /// subtleties shape the wakeup protocol (see `docs/CONCURRENCY.md`):
    ///
    /// * guard release uses `notify_all`, not `notify_one` — a condvar
    ///   makes no promise about *which* waiter wakes, so `notify_one`
    ///   could wake a non-head waiter that re-checks its ticket and goes
    ///   back to sleep, consuming the only wakeup (a lost notify);
    /// * after the head waiter takes its slot and advances `wait_head`, it
    ///   re-notifies if slots remain free — after two rapid releases the
    ///   new head may have already re-checked (seeing itself non-head)
    ///   before the old head advanced, and would otherwise sleep forever.
    pub fn admit(&self) -> Option<PoolGuard<'_>> {
        let mut state = self.state.lock();
        let mut ticket = None;
        if state.in_flight >= self.slots || state.waiting > 0 {
            if state.waiting >= self.queue_depth {
                state.rejected += 1;
                return None;
            }
            let mine = state.wait_tail;
            state.wait_tail += 1;
            state.waiting += 1;
            state.queued += 1;
            ticket = Some(mine);
            let slots = self.slots;
            state = self
                .available
                .wait_while(state, |s| s.in_flight >= slots || s.wait_head != mine);
            state.wait_head += 1;
            state.waiting -= 1;
        }
        state.in_flight += 1;
        state.peak_in_flight = state.peak_in_flight.max(state.in_flight);
        state.admitted += 1;
        let seq = state.admitted;
        let renotify = ticket.is_some() && state.waiting > 0 && state.in_flight < self.slots;
        drop(state);
        if renotify {
            self.available.notify_all();
        }
        Some(PoolGuard {
            pool: self,
            ticket,
            seq,
        })
    }

    /// Counter snapshot for the `stats` frame.
    pub fn stats(&self) -> PoolStats {
        let state = self.state.lock();
        PoolStats {
            slots: self.slots,
            queue_depth: self.queue_depth,
            in_flight: state.in_flight,
            waiting: state.waiting,
            peak_in_flight: state.peak_in_flight,
            admitted: state.admitted,
            queued: state.queued,
            rejected: state.rejected,
        }
    }

    fn release(&self) {
        let mut state = self.state.lock();
        state.in_flight -= 1;
        let wake = state.waiting > 0;
        drop(state);
        if wake {
            // notify_all, deliberately: see the wakeup-protocol note on
            // [`Pool::admit`].
            self.available.notify_all();
        }
    }
}

/// An admitted request's slot; dropping it releases the slot and wakes the
/// queued waiters (the head ticket takes the slot).
#[derive(Debug)]
pub struct PoolGuard<'a> {
    pool: &'a Pool,
    /// The wait-queue ticket this request held, `None` if admitted
    /// without waiting.
    ticket: Option<u64>,
    /// 1-based admission sequence number (the value of the pool's
    /// `admitted` counter when this request took its slot).
    seq: u64,
}

impl PoolGuard<'_> {
    /// The wait-queue ticket this request held while queued (`None` when a
    /// free slot was taken immediately).  Tickets are handed out in queue
    /// order, so among queued requests, admission order must follow ticket
    /// order — the FIFO invariant the model suite pins.
    pub fn queued_ticket(&self) -> Option<u64> {
        self.ticket
    }

    /// 1-based admission sequence number of this request within its pool.
    pub fn admission_seq(&self) -> u64 {
        self.seq
    }
}

impl Drop for PoolGuard<'_> {
    fn drop(&mut self) {
        self.pool.release();
    }
}

#[cfg(ajd_model)]
impl Pool {
    /// **Seeded mutant, model builds only**: consumes `guard` releasing
    /// its slot **without notifying** the condvar — the dropped
    /// `notify_one`/`notify_all` bug class.  Any waiter queued at that
    /// moment sleeps forever; the model suite proves the explorer flags
    /// this as a missed wakeup with a replayable schedule.  Never compiled
    /// into normal builds.
    pub fn mutant_release_without_notify(guard: PoolGuard<'_>) {
        let pool = guard.pool;
        // Suppress the guard's Drop (which would perform the correct,
        // notifying release).
        std::mem::forget(guard);
        let mut state = pool.state.lock();
        state.in_flight -= 1;
        // MUTANT: no notify here.
    }
}

/// The server's two admission pools.
#[derive(Debug)]
pub struct Admission {
    /// Pool for `loss`/`j`/`entropy`/`analyze`.
    pub point: Pool,
    /// Pool for `mine`.
    pub mine: Pool,
}

impl Admission {
    /// Builds both pools from a (clamped) config.
    pub fn new(config: &AdmissionConfig) -> Self {
        Admission {
            point: Pool::new(config.point_slots, config.queue_depth),
            mine: Pool::new(config.mine_slots, config.queue_depth),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn slots_admit_up_to_capacity_then_reject_with_empty_queue() {
        let pool = Pool::new(2, 0);
        let g1 = pool.admit().expect("slot 1");
        let g2 = pool.admit().expect("slot 2");
        assert!(pool.admit().is_none(), "third request must be rejected");
        let s = pool.stats();
        assert_eq!(s.in_flight, 2);
        assert_eq!(s.peak_in_flight, 2);
        assert_eq!(s.admitted, 2);
        assert_eq!(s.rejected, 1);
        drop(g1);
        assert!(pool.admit().is_some(), "freed slot must be reusable");
        drop(g2);
        assert_eq!(pool.stats().rejected, 1);
    }

    #[test]
    fn queued_request_waits_for_a_slot() {
        let pool = Pool::new(1, 1);
        let guard = pool.admit().unwrap();
        let released = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                let g = pool.admit().expect("queued request must eventually run");
                // The holder must have released before we were admitted.
                assert_eq!(released.load(Ordering::SeqCst), 1);
                drop(g);
            });
            // Give the waiter time to enqueue, then verify it is waiting.
            while pool.stats().waiting == 0 {
                std::thread::yield_now();
            }
            released.store(1, Ordering::SeqCst);
            drop(guard);
            waiter.join().unwrap();
        });
        let s = pool.stats();
        assert_eq!(s.admitted, 2);
        assert_eq!(s.queued, 1);
        assert_eq!(s.rejected, 0);
        assert_eq!(s.in_flight, 0);
    }

    #[test]
    fn peak_in_flight_never_exceeds_slots_under_a_burst() {
        let pool = Pool::new(3, 64);
        let barrier = Barrier::new(16);
        std::thread::scope(|scope| {
            for _ in 0..16 {
                scope.spawn(|| {
                    barrier.wait();
                    let _g = pool.admit().expect("deep queue admits everyone");
                    std::thread::yield_now();
                });
            }
        });
        let s = pool.stats();
        assert_eq!(s.admitted, 16);
        assert!(s.peak_in_flight <= 3, "burst overran the slot budget");
        assert_eq!(s.in_flight, 0);
        assert_eq!(s.rejected, 0);
    }

    #[test]
    fn default_config_is_sane_and_clamping_works() {
        let d = AdmissionConfig::default();
        assert!(d.point_slots >= 4);
        assert!(d.mine_slots >= 1);
        assert!(d.point_threads >= 1 && d.mine_threads >= 1);
        let z = AdmissionConfig {
            point_slots: 0,
            mine_slots: 0,
            queue_depth: 0,
            point_threads: 0,
            mine_threads: 0,
        }
        .clamped();
        assert_eq!(z.point_slots, 1);
        assert_eq!(z.mine_slots, 1);
        assert_eq!(z.point_threads, 1);
        assert_eq!(z.mine_threads, 1);
        assert_eq!(z.queue_depth, 0);
    }

    #[test]
    fn admission_builds_separate_pools() {
        let a = Admission::new(&AdmissionConfig {
            point_slots: 2,
            mine_slots: 1,
            queue_depth: 0,
            point_threads: 1,
            mine_threads: 1,
        });
        let _m = a.mine.admit().unwrap();
        // Mine saturation must not affect point admission.
        assert!(a.mine.admit().is_none());
        assert!(a.point.admit().is_some());
        assert_eq!(a.point.stats().rejected, 0);
        assert_eq!(a.mine.stats().rejected, 1);
    }
}
