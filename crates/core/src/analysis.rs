//! The context-first [`Analyzer`] — one entry point for everything the
//! paper measures about a relation.
//!
//! `Analyzer::new(&relation)` owns a shared
//! [`ajd_relation::AnalysisContext`] and routes **every** quantity through
//! it, so any two queries that touch the same attribute subset — two
//! measures, two candidate join trees, a measure and a mining sweep — pay
//! for the grouping once:
//!
//! * the exact loss `ρ(R,S)` of eq. (1) ([`Analyzer::loss`]), via
//!   message-passing join counting ([`Analyzer::join_size`]);
//! * the J-measure `J(T)` (eq. 7, [`Analyzer::j_measure`]) and the
//!   KL-divergence `D_KL(P‖P^T)` (Theorem 3.2, [`Analyzer::kl`]);
//! * entropies and (conditional) mutual informations
//!   ([`Analyzer::entropy`], [`Analyzer::cmi`], [`Analyzer::mvd_cmi`]);
//! * per-MVD quantities ([`Analyzer::mvd_loss`], [`Analyzer::mvd_holds`]);
//! * the full [`LossReport`] ([`Analyzer::analyze`]): everything above plus
//!   the ordered-support decomposition (eq. 9), the Lemma 4.1 and
//!   Proposition 5.1 deterministic bounds and the Theorem 2.2 sandwich;
//! * fan-out ([`Analyzer::batch`] → [`crate::BatchAnalyzer`]) and schema
//!   mining ([`Analyzer::mine`]) over the same shared cache.
//!
//! The probabilistic Theorem 5.1 / Proposition 5.3 bounds are derived from
//! a report via [`LossReport::confidence_bounds`], which speaks the same
//! [`Estimate`] vocabulary as the estimation tier
//! ([`crate::EstimatedAnalyzer`]).

use crate::estimate::{BoundKind, Estimate};
use ajd_bounds::{
    epsilon_star, j_lower_bound_on_loss, prop51_j_bound, prop53_schema_bound, Prop53Bound,
    Thm51Params,
};
use ajd_info::jmeasure::{j_measure, j_measure_bounds, JMeasureBounds};
use ajd_info::{conditional_entropy, conditional_mutual_information, entropy};
use ajd_info::{kl_divergence_to_tree, kl_report, mutual_information, mvd_cmi, KlReport};
use ajd_jointree::mvd::ordered_support;
use ajd_jointree::{count_acyclic_join, loss_acyclic, JoinTree, Mvd};
use ajd_relation::{
    AnalysisContext, AttrSet, CacheStats, GroupKernel, GroupSource, Relation, RelationError, Result,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Loss and information measures of a single support MVD `φᵢ`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MvdLoss {
    /// The MVD `Δᵢ ↠ Ω_{1:i-1} | Ω_{i:m}`.
    pub mvd: Mvd,
    /// Conditional mutual information `I(Ω_{1:i-1}; Ω_{i:m} | Δᵢ)` in nats.
    pub cmi_nats: f64,
    /// The loss `ρ(R, φᵢ)` of the two-way decomposition (eq. 28).
    pub rho: f64,
    /// `log(1 + ρ(R, φᵢ))` in nats.
    pub log1p_rho: f64,
    /// Measured active-domain sizes `(d_A, d_B, d_C)` of the two exclusive
    /// sides and the separator (value-combination counts), used to
    /// instantiate Theorem 5.1.
    pub domain_sizes: (u64, u64, u64),
}

/// The probabilistic (Theorem 5.1 / Proposition 5.3) upper bounds, together
/// with the per-MVD deviation terms and qualifying-condition flags.
///
/// Superseded by [`ConfidenceBounds`], which carries the same data in the
/// estimation tier's [`Estimate`] vocabulary (per-MVD value + ε + δ + bound
/// in one shape) instead of parallel bare-`f64` vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbabilisticBounds {
    /// Per-MVD deviation `ε*(φᵢ, N, δ/(m−1))` in nats.
    pub per_mvd_epsilon: Vec<f64>,
    /// Whether the qualifying condition (37) holds for each support MVD.
    pub per_mvd_qualified: Vec<bool>,
    /// The schema-level bounds of Proposition 5.3.
    pub schema_bound: Prop53Bound,
    /// The confidence parameter `δ` the caller requested.
    pub delta: f64,
}

/// Theorem 5.1 / Proposition 5.3 confidence bounds in the estimation tier's
/// vocabulary: each support MVD's conditional mutual information is an
/// [`Estimate`] whose ε is the theorem's deviation `ε*(φᵢ, N, δ/(m−1))` and
/// whose bound kind is [`BoundKind::Theorem51`] — the same shape every
/// other measure in the workspace now reports.
#[derive(Debug, Clone)]
pub struct ConfidenceBounds {
    /// Per-support-MVD CMI estimates: `value` is the measured
    /// `I(Ω_{1:i-1}; Ω_{i:m} | Δᵢ)` (nats), `epsilon` the Theorem 5.1
    /// deviation at per-MVD confidence `δ/(m−1)`, so w.h.p.
    /// `log(1 + ρ(R,φᵢ)) ≤ value + epsilon` when the MVD qualifies.
    pub per_mvd: Vec<Estimate<f64>>,
    /// Whether the qualifying condition (37) holds for each support MVD
    /// (when it does not, the ε is still computed but the paper gives no
    /// guarantee).
    pub per_mvd_qualified: Vec<bool>,
    /// The schema-level bounds of Proposition 5.3.
    pub schema_bound: Prop53Bound,
    /// The total confidence parameter `δ` the caller requested.
    pub delta: f64,
}

/// Everything the paper says about one `(R, S)` pair, in one struct.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LossReport {
    /// Number of tuples `N = |R|` (with multiplicity for multisets).
    pub n: u64,
    /// Number of *distinct* tuples of `R`.  Equals [`LossReport::n`] for set
    /// relations; for multisets the loss is measured against this value,
    /// since bag projections are set-semantic and the rejoined relation is
    /// compared with `distinct(R)`.
    pub distinct_n: u64,
    /// Number of bags `m` of the schema.
    pub num_bags: usize,
    /// Exact size of the acyclic join `|⋈ᵢ R[Ωᵢ]|`.
    pub join_size: u128,
    /// Number of spurious tuples `|⋈ᵢ R[Ωᵢ]| − |distinct(R)|`.
    pub spurious: u128,
    /// The loss `ρ(R,S)` of eq. (1).
    pub rho: f64,
    /// `log(1 + ρ(R,S))` in nats.
    pub log1p_rho: f64,
    /// The J-measure `J(T)` in nats (eq. 7).
    pub j_measure: f64,
    /// `D_KL(P_R ‖ P_R^T)` in nats, computed independently of `J` as a
    /// numerical cross-check of Theorem 3.2.
    pub kl_nats: f64,
    /// Lemma 4.1 lower bound on the loss: `e^J − 1 ≤ ρ`.
    pub rho_lower_bound: f64,
    /// Theorem 2.2 sandwich around `J`.
    pub theorem22: JMeasureBounds,
    /// Per-MVD losses over the ordered support of the tree rooted at 0.
    pub per_mvd: Vec<MvdLoss>,
    /// Proposition 5.1 deterministic upper bound on the J-measure:
    /// `J(R,S) ≤ Σᵢ log(1 + ρ(R,φᵢ))`.  (The loss itself does not compose
    /// this way; see `ajd_bounds::schema`.)
    pub prop51_bound: f64,
}

impl LossReport {
    /// `true` if the schema is lossless for this relation
    /// (`ρ = 0`, equivalently `J = 0` by Theorem 2.1).
    pub fn is_lossless(&self) -> bool {
        self.spurious == 0
    }

    /// The gap `log(1+ρ) − J ≥ 0` of Lemma 4.1 (0 exactly when the lower
    /// bound is tight, as for Example 4.1).
    pub fn lemma41_gap(&self) -> f64 {
        self.log1p_rho - self.j_measure
    }

    /// Evaluates the probabilistic upper bounds of Theorem 5.1 /
    /// Proposition 5.3 at total confidence `1 − δ`, in the estimation
    /// tier's [`Estimate`] vocabulary.
    ///
    /// Each support MVD's `ε*` is instantiated at confidence `δ/(m−1)` with
    /// the *measured* active-domain sizes of its sides, as recorded in this
    /// report, and returned as an [`Estimate`] around the measured CMI with
    /// [`BoundKind::Theorem51`].  The returned struct also reports, per
    /// MVD, whether the qualifying condition (37) of Theorem 5.1 holds;
    /// when it does not, the ε-term is still computed but the paper gives
    /// no guarantee.
    ///
    /// `delta` must lie strictly inside `(0, 1)`; values outside that range
    /// yield [`RelationError::InvalidParameter`] (library code must not
    /// panic on caller input).
    pub fn confidence_bounds(&self, delta: f64) -> Result<ConfidenceBounds> {
        if !(delta > 0.0 && delta < 1.0) {
            return Err(RelationError::InvalidParameter {
                what: "delta",
                detail: format!("confidence parameter must be in (0,1), got {delta}"),
            });
        }
        let m_minus_1 = self.per_mvd.len().max(1);
        let per_delta = delta / m_minus_1 as f64;
        let mut per_mvd = Vec::with_capacity(self.per_mvd.len());
        let mut qualified = Vec::with_capacity(self.per_mvd.len());
        let mut cmis = Vec::with_capacity(self.per_mvd.len());
        let mut eps = Vec::with_capacity(self.per_mvd.len());
        for m in &self.per_mvd {
            let (d_a, d_b, d_c) = m.domain_sizes;
            let params = Thm51Params::new(d_a.max(1), d_b.max(1), d_c.max(1), self.n, per_delta);
            let e = epsilon_star(&params);
            per_mvd.push(Estimate {
                value: m.cmi_nats,
                epsilon: e,
                delta: per_delta,
                seed: None,
                sample_rows: self.n,
                total_rows: self.n,
                bound: BoundKind::Theorem51,
            });
            qualified.push(ajd_bounds::thm51_qualifying_condition(&params));
            cmis.push(m.cmi_nats);
            eps.push(e);
        }
        let schema_bound = prop53_schema_bound(&cmis, &eps, self.j_measure, delta);
        Ok(ConfidenceBounds {
            per_mvd,
            per_mvd_qualified: qualified,
            schema_bound,
            delta,
        })
    }

    /// The same bounds as [`LossReport::confidence_bounds`], in the legacy
    /// parallel-vector shape.
    #[deprecated(
        note = "use LossReport::confidence_bounds, which reports each MVD as an Estimate \
                (value + ε + δ + bound) instead of parallel bare-f64 vectors"
    )]
    pub fn probabilistic_bounds(&self, delta: f64) -> Result<ProbabilisticBounds> {
        let cb = self.confidence_bounds(delta)?;
        Ok(ProbabilisticBounds {
            per_mvd_epsilon: cb.per_mvd.iter().map(|e| e.epsilon).collect(),
            per_mvd_qualified: cb.per_mvd_qualified,
            schema_bound: cb.schema_bound,
            delta,
        })
    }
}

impl fmt::Display for LossReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Loss analysis (N = {}, m = {} bags)",
            self.n, self.num_bags
        )?;
        if self.distinct_n != self.n {
            writeln!(f, "  distinct tuples    : {}", self.distinct_n)?;
        }
        writeln!(f, "  join size          : {}", self.join_size)?;
        writeln!(f, "  spurious tuples    : {}", self.spurious)?;
        writeln!(f, "  rho (loss)         : {:.6}", self.rho)?;
        writeln!(f, "  log(1+rho)  [nats] : {:.6}", self.log1p_rho)?;
        writeln!(f, "  J-measure   [nats] : {:.6}", self.j_measure)?;
        writeln!(f, "  KL(P || P^T)[nats] : {:.6}", self.kl_nats)?;
        writeln!(f, "  Lemma 4.1 rho >=   : {:.6}", self.rho_lower_bound)?;
        writeln!(f, "  Prop 5.1 bound     : {:.6}", self.prop51_bound)?;
        writeln!(f, "  support MVDs:")?;
        for (i, m) in self.per_mvd.iter().enumerate() {
            writeln!(
                f,
                "    phi_{}: {}   I = {:.6}, rho = {:.6}",
                i + 2,
                m.mvd,
                m.cmi_nats,
                m.rho
            )?;
        }
        Ok(())
    }
}

/// Computes the full [`LossReport`] of one tree over any [`GroupSource`].
///
/// This is the shared implementation behind [`Analyzer::analyze`] and
/// [`crate::BatchAnalyzer::analyze`].
///
/// Requirements: the relation must be non-empty and the tree's attributes
/// must be exactly the relation's attributes (so that the empirical
/// distributions and `P^T` live over the same variable set).
///
/// Multiset relations are accepted — information measures then weight
/// tuples by multiplicity, and the loss side (`join_size`, `spurious`, `ρ`)
/// is measured against the number of *distinct* tuples
/// ([`LossReport::distinct_n`]), because bag projections are set-semantic
/// and the rejoined relation contains each tuple once.  The paper's
/// statements relating `J` to `ρ` (Lemma 4.1, Proposition 5.1) assume a
/// *set* relation; call [`Relation::distinct`] first if your data has
/// duplicates and you want those guarantees.
pub(crate) fn report_for<S: GroupSource>(src: &S, tree: &JoinTree) -> Result<LossReport> {
    if src.is_empty() {
        return Err(RelationError::EmptyInput("relation for loss analysis"));
    }
    let relation_attrs = src.attrs();
    if tree.attributes() != relation_attrs {
        return Err(RelationError::SchemaMismatch {
            detail: format!(
                "join tree covers {} but the relation has attributes {}",
                tree.attributes(),
                relation_attrs
            ),
        });
    }

    let n = src.num_rows() as u64;
    // For a set relation this is `n`; for a multiset it is the size of
    // `distinct(R)`, the baseline the rejoined (set-semantic) join must be
    // compared against.  (The full-relation group counts also back `H(Ω)`
    // and the KL sum, so this grouping is shared, not extra.)
    let distinct_n = src.group_counts(&relation_attrs)?.num_groups() as u64;
    let join_size = count_acyclic_join(src, tree)?;
    let spurious = join_size
        .checked_sub(distinct_n as u128)
        .expect("the acyclic join contains every distinct tuple of R");
    let rho = (join_size as f64 - distinct_n as f64) / distinct_n as f64;
    let j = j_measure(src, tree)?;
    let kl = kl_divergence_to_tree(src, tree)?;
    let theorem22 = j_measure_bounds(src, tree, 0)?;

    // Active-domain size of an attribute set: O(1) from the column
    // dictionary for a single attribute, a (memoized) grouping for value
    // combinations.  Both count the same distinct projections.
    let marginal_support = |attrs: &AttrSet| -> Result<u64> {
        match attrs.as_slice() {
            [] => Ok(1),
            [single] => Ok(src.active_domain_size(*single)? as u64),
            _ => Ok(src.group_counts(attrs)?.num_groups() as u64),
        }
    };

    let rooted = tree.rooted(0)?;
    let support = ordered_support(&rooted);
    let mut per_mvd = Vec::with_capacity(support.len());
    for mvd in support {
        let cmi = mvd_cmi(src, &mvd)?;
        // Ordered-support MVDs cover all of Ω, so this is measured against
        // the same distinct-tuple baseline as the schema loss.
        let mvd_rho = mvd.loss(src)?;
        let d_a = marginal_support(&mvd.left_exclusive())?;
        let d_b = marginal_support(&mvd.right_exclusive())?;
        let d_c = marginal_support(&mvd.lhs)?;
        per_mvd.push(MvdLoss {
            cmi_nats: cmi,
            rho: mvd_rho,
            log1p_rho: mvd_rho.ln_1p(),
            domain_sizes: (d_a, d_b, d_c),
            mvd,
        });
    }
    let prop51_bound = prop51_j_bound(&per_mvd.iter().map(|m| m.rho).collect::<Vec<_>>());

    Ok(LossReport {
        n,
        distinct_n,
        num_bags: tree.num_nodes(),
        join_size,
        spurious,
        rho,
        log1p_rho: rho.ln_1p(),
        j_measure: j,
        kl_nats: kl,
        rho_lower_bound: j_lower_bound_on_loss(j.max(0.0)),
        theorem22,
        per_mvd,
        prop51_bound,
    })
}

/// The context-first analysis entry point: one owner for the cached state
/// of one relation, one API to route every measure through.
///
/// ```
/// use ajd_core::Analyzer;
/// use ajd_jointree::JoinTree;
/// use ajd_random::generators::bijection_relation;
/// use ajd_relation::{AttrId, AttrSet};
///
/// // Example 4.1 of the paper.
/// let r = bijection_relation(16);
/// let tree = JoinTree::from_acyclic_schema(&[
///     AttrSet::singleton(AttrId(0)),
///     AttrSet::singleton(AttrId(1)),
/// ]).unwrap();
///
/// let analyzer = Analyzer::new(&r);
/// let report = analyzer.analyze(&tree).unwrap();
/// assert_eq!(report.spurious, 16 * 16 - 16);
/// // Individual measures share the same cache:
/// assert_eq!(analyzer.loss(&tree).unwrap(), report.rho);
/// assert!(analyzer.cache_stats().hits > 0);
/// ```
#[derive(Debug)]
pub struct Analyzer<S = Relation> {
    ctx: Arc<AnalysisContext<S>>,
}

/// Cloning an analyzer clones the *handle*: both analyzers share one
/// context (source, caches and counters) — the cheap way to hand an
/// epoch-consistent view to another thread.
impl<S> Clone for Analyzer<S> {
    fn clone(&self) -> Self {
        Analyzer {
            ctx: Arc::clone(&self.ctx),
        }
    }
}

impl<S: GroupKernel> Analyzer<S> {
    /// Creates an analyzer over `src` — a flat [`Relation`] or an
    /// [`ajd_relation::ShardedRelation`] — with an empty cache and the
    /// default [`ThreadBudget`](ajd_relation::ThreadBudget) (the machine's
    /// available parallelism) for computing cache misses.
    ///
    /// `src` is a handle: pass `&relation` to borrow (the classic one-shot
    /// path) or an `Arc<ShardedRelation>` snapshot from an
    /// [`ajd_relation::ShardedStore`] to analyze one pinned epoch of a live
    /// relation.
    pub fn new(src: S) -> Self {
        Analyzer {
            ctx: Arc::new(AnalysisContext::new(src)),
        }
    }

    /// Creates an analyzer whose cache misses are computed under an explicit
    /// [`ThreadBudget`](ajd_relation::ThreadBudget) — use
    /// [`ajd_relation::ThreadBudget::serial`] when the caller already owns
    /// the parallelism (e.g. per-trial analyzers inside a parallel
    /// experiment loop).
    pub fn with_thread_budget(src: S, budget: ajd_relation::ThreadBudget) -> Self {
        Analyzer {
            ctx: Arc::new(AnalysisContext::with_thread_budget(src, budget)),
        }
    }

    /// The shared context handle (for constructs that want to co-own it).
    pub(crate) fn shared(&self) -> Arc<AnalysisContext<S>> {
        Arc::clone(&self.ctx)
    }

    /// The grouping source being analysed.
    pub fn source(&self) -> &S {
        self.ctx.source()
    }

    /// The underlying shared context, for advanced composition (e.g. calling
    /// the free measure functions of `ajd-info` / `ajd-jointree` directly
    /// against this analyzer's cache).
    pub fn context(&self) -> &AnalysisContext<S> {
        &self.ctx
    }

    /// Snapshot of the shared cache's effectiveness.
    pub fn cache_stats(&self) -> CacheStats {
        self.ctx.stats()
    }

    // ------------------------------------------------------------------
    // Information measures
    // ------------------------------------------------------------------

    /// Entropy `H(attrs)` in nats of the marginal empirical distribution.
    pub fn entropy(&self, attrs: &AttrSet) -> Result<f64> {
        entropy(&*self.ctx, attrs)
    }

    /// Conditional entropy `H(A | B)` in nats.
    pub fn conditional_entropy(&self, a: &AttrSet, b: &AttrSet) -> Result<f64> {
        conditional_entropy(&*self.ctx, a, b)
    }

    /// Mutual information `I(A; B)` in nats.
    pub fn mutual_information(&self, a: &AttrSet, b: &AttrSet) -> Result<f64> {
        mutual_information(&*self.ctx, a, b)
    }

    /// Conditional mutual information `I(A; B | C)` in nats (eq. 4).
    pub fn cmi(&self, a: &AttrSet, b: &AttrSet, c: &AttrSet) -> Result<f64> {
        conditional_mutual_information(&*self.ctx, a, b, c)
    }

    /// The CMI `I(A;B|C)` of an MVD `φ = C ↠ A | B`.
    pub fn mvd_cmi(&self, mvd: &Mvd) -> Result<f64> {
        mvd_cmi(&*self.ctx, mvd)
    }

    // ------------------------------------------------------------------
    // Tree measures
    // ------------------------------------------------------------------

    /// The J-measure `J(T)` in nats (eq. 7).
    pub fn j_measure(&self, tree: &JoinTree) -> Result<f64> {
        j_measure(&*self.ctx, tree)
    }

    /// The Theorem 2.2 sandwich (max CMI ≤ J ≤ sum CMI) for the tree rooted
    /// at `root`.
    pub fn j_measure_bounds(&self, tree: &JoinTree, root: usize) -> Result<JMeasureBounds> {
        j_measure_bounds(&*self.ctx, tree, root)
    }

    /// `D_KL(P_R ‖ P_R^T)` in nats (Theorem 3.2).
    pub fn kl(&self, tree: &JoinTree) -> Result<f64> {
        kl_divergence_to_tree(&*self.ctx, tree)
    }

    /// Like [`Analyzer::kl`], additionally reporting the support size.
    pub fn kl_report(&self, tree: &JoinTree) -> Result<KlReport> {
        kl_report(&*self.ctx, tree)
    }

    /// Exact size of the acyclic join `|⋈ᵢ R[Ωᵢ]|` (message passing, no
    /// materialisation).
    pub fn join_size(&self, tree: &JoinTree) -> Result<u128> {
        count_acyclic_join(&*self.ctx, tree)
    }

    /// The exact loss `ρ(R,S)` of eq. (1).
    pub fn loss(&self, tree: &JoinTree) -> Result<f64> {
        loss_acyclic(&*self.ctx, tree)
    }

    /// The full [`LossReport`] of one tree: loss, J, KL, Theorem 2.2
    /// sandwich, ordered-support decomposition and deterministic bounds.
    pub fn analyze(&self, tree: &JoinTree) -> Result<LossReport> {
        report_for(&*self.ctx, tree)
    }

    // ------------------------------------------------------------------
    // MVD measures
    // ------------------------------------------------------------------

    /// Size of an MVD's two-way join `|R[C∪A] ⋈ R[C∪B]|`.
    pub fn mvd_join_size(&self, mvd: &Mvd) -> Result<u128> {
        mvd.join_size(&*self.ctx)
    }

    /// The loss `ρ(R, φ)` of eq. (28) for one MVD.
    pub fn mvd_loss(&self, mvd: &Mvd) -> Result<f64> {
        mvd.loss(&*self.ctx)
    }

    /// `true` if the MVD holds in the relation (zero spurious tuples).
    pub fn mvd_holds(&self, mvd: &Mvd) -> Result<bool> {
        mvd.holds_in(&*self.ctx)
    }

    // ------------------------------------------------------------------
    // Fan-out
    // ------------------------------------------------------------------

    /// A [`crate::BatchAnalyzer`] sharing this analyzer's cache: evaluate
    /// many trees in parallel, every grouping still paid for once.
    pub fn batch(&self) -> crate::BatchAnalyzer<S> {
        crate::BatchAnalyzer::from_shared(self.shared())
    }

    /// Mines an approximate acyclic schema (Chow–Liu + greedy coarsening,
    /// see [`crate::SchemaMiner`]) through this analyzer's cache.
    ///
    /// Candidate scoring fans out over the analyzer's thread budget
    /// (default: available parallelism); construct the analyzer with
    /// [`Analyzer::with_thread_budget`] and a serial budget when an outer
    /// loop already owns the parallelism.  The mined schema is identical at
    /// any budget.
    pub fn mine(&self, config: crate::DiscoveryConfig) -> Result<crate::MinedSchema> {
        crate::SchemaMiner::new(config).mine_with(&self.batch())
    }
}

impl<'a> Analyzer<&'a Relation> {
    /// The flat relation being analysed (for analyzers over an
    /// [`ajd_relation::ShardedRelation`], use [`Analyzer::source`]).
    pub fn relation(&self) -> &'a Relation {
        self.ctx.relation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajd_random::generators::{bijection_relation, conditional_product_relation};
    use ajd_random::RandomRelationModel;
    use ajd_relation::{AttrId, AttrSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bag(ids: &[u32]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    fn cross_tree() -> JoinTree {
        JoinTree::new(vec![bag(&[0]), bag(&[1])], vec![(0, 1)]).unwrap()
    }

    #[test]
    fn bijection_relation_report_matches_example_4_1() {
        let n = 16u32;
        let r = bijection_relation(n);
        let rep = Analyzer::new(&r).analyze(&cross_tree()).unwrap();
        assert_eq!(rep.n, n as u64);
        assert_eq!(rep.join_size, (n as u128) * (n as u128));
        assert_eq!(rep.spurious, (n as u128) * (n as u128) - n as u128);
        assert!((rep.rho - (n as f64 - 1.0)).abs() < 1e-9);
        // Tightness of Lemma 4.1 on this family.
        assert!(rep.lemma41_gap().abs() < 1e-9);
        assert!((rep.j_measure - (n as f64).ln()).abs() < 1e-9);
        assert!((rep.rho_lower_bound - rep.rho).abs() < 1e-6);
        assert!(!rep.is_lossless());
    }

    #[test]
    fn lossless_relation_reports_zero_everything() {
        let r = conditional_product_relation(4, 3, 2);
        let tree = JoinTree::new(vec![bag(&[0, 2]), bag(&[1, 2])], vec![(0, 1)]).unwrap();
        let rep = Analyzer::new(&r).analyze(&tree).unwrap();
        assert!(rep.is_lossless());
        assert_eq!(rep.spurious, 0);
        assert!(rep.rho.abs() < 1e-12);
        assert!(rep.j_measure.abs() < 1e-9);
        assert!(rep.kl_nats.abs() < 1e-9);
        assert!(rep.rho_lower_bound.abs() < 1e-9);
        assert!(rep.prop51_bound.abs() < 1e-9);
        for m in &rep.per_mvd {
            assert!(m.rho.abs() < 1e-12);
            assert!(m.cmi_nats.abs() < 1e-9);
        }
    }

    #[test]
    fn theorem_3_2_and_lemma_4_1_hold_on_random_relations() {
        let mut rng = StdRng::seed_from_u64(2024);
        let model =
            RandomRelationModel::new(ajd_random::ProductDomain::new(vec![6, 5, 4, 3]).unwrap());
        let trees = vec![
            JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap(),
            JoinTree::star(vec![bag(&[0, 1]), bag(&[0, 2]), bag(&[0, 3])]).unwrap(),
        ];
        for _ in 0..5 {
            let r = model.sample(&mut rng, 80).unwrap();
            let analyzer = Analyzer::new(&r);
            for tree in &trees {
                let rep = analyzer.analyze(tree).unwrap();
                // Theorem 3.2: J = KL.
                assert!((rep.j_measure - rep.kl_nats).abs() < 1e-9);
                // Lemma 4.1: J <= log(1+rho).
                assert!(rep.j_measure <= rep.log1p_rho + 1e-9);
                // Proposition 5.1: J <= sum log(1+rho_i).
                assert!(rep.j_measure <= rep.prop51_bound + 1e-9);
                // Theorem 2.2 sandwich.
                assert!(rep.theorem22.max_cmi <= rep.j_measure + 1e-9);
                assert!(rep.j_measure <= rep.theorem22.sum_cmi + 1e-9);
            }
        }
    }

    #[test]
    fn per_mvd_breakdown_has_one_entry_per_edge() {
        let mut rng = StdRng::seed_from_u64(7);
        let model =
            RandomRelationModel::new(ajd_random::ProductDomain::new(vec![4, 4, 4, 4]).unwrap());
        let r = model.sample(&mut rng, 60).unwrap();
        let tree = JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap();
        let rep = Analyzer::new(&r).analyze(&tree).unwrap();
        assert_eq!(rep.per_mvd.len(), tree.num_edges());
        for m in &rep.per_mvd {
            assert!(m.rho >= 0.0);
            assert!(m.cmi_nats >= -1e-9);
            // Lemma 4.1 applied to a single MVD: I(A;B|C) <= log(1+rho_i).
            assert!(m.cmi_nats <= m.log1p_rho + 1e-9);
            assert!(m.domain_sizes.0 >= 1 && m.domain_sizes.1 >= 1 && m.domain_sizes.2 >= 1);
        }
    }

    #[test]
    fn confidence_bounds_structure() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = RandomRelationModel::for_mvd(8, 8, 2).unwrap();
        let r = model.sample(&mut rng, 100).unwrap();
        let tree = JoinTree::new(vec![bag(&[0, 2]), bag(&[1, 2])], vec![(0, 1)]).unwrap();
        let rep = Analyzer::new(&r).analyze(&tree).unwrap();
        let cb = rep.confidence_bounds(0.1).unwrap();
        assert_eq!(cb.per_mvd.len(), 1);
        assert_eq!(cb.per_mvd_qualified.len(), 1);
        let est = &cb.per_mvd[0];
        assert!(est.epsilon > 0.0);
        assert_eq!(est.bound, crate::BoundKind::Theorem51);
        assert_eq!(est.value.to_bits(), rep.per_mvd[0].cmi_nats.to_bits());
        assert_eq!(est.sample_rows, rep.n);
        assert_eq!(est.total_rows, rep.n);
        assert!(est.seed.is_none());
        // Per-MVD confidence is the split δ/(m−1).
        assert!((est.delta - 0.1).abs() < 1e-12);
        assert!((cb.schema_bound.confidence - 0.9).abs() < 1e-12);
        // With only 100 tuples the qualifying condition cannot hold.
        assert!(!cb.per_mvd_qualified[0]);
        // The eps-inflated bound dominates the measured log(1+rho)
        // trivially here (eps is huge for tiny N).
        assert!(cb.schema_bound.sum_cmi_bound >= rep.log1p_rho);
    }

    /// The deprecated parallel-vector shape is derived from
    /// [`LossReport::confidence_bounds`] and must agree with it exactly.
    #[test]
    #[allow(deprecated)]
    fn probabilistic_bounds_matches_confidence_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = RandomRelationModel::for_mvd(8, 8, 2).unwrap();
        let r = model.sample(&mut rng, 100).unwrap();
        let tree = JoinTree::new(vec![bag(&[0, 2]), bag(&[1, 2])], vec![(0, 1)]).unwrap();
        let rep = Analyzer::new(&r).analyze(&tree).unwrap();
        let pb = rep.probabilistic_bounds(0.1).unwrap();
        let cb = rep.confidence_bounds(0.1).unwrap();
        assert_eq!(pb.per_mvd_epsilon.len(), cb.per_mvd.len());
        for (e, est) in pb.per_mvd_epsilon.iter().zip(&cb.per_mvd) {
            assert_eq!(e.to_bits(), est.epsilon.to_bits());
        }
        assert_eq!(pb.per_mvd_qualified, cb.per_mvd_qualified);
        assert_eq!(
            pb.schema_bound.sum_cmi_bound.to_bits(),
            cb.schema_bound.sum_cmi_bound.to_bits()
        );
    }

    /// Regression: an out-of-range `delta` used to `assert!` (panicking in
    /// library code); it must now surface as a proper error.
    #[test]
    fn confidence_bounds_reject_out_of_range_delta() {
        let r = bijection_relation(4);
        let rep = Analyzer::new(&r).analyze(&cross_tree()).unwrap();
        for bad in [0.0, 1.0, -0.5, 2.0, f64::NAN] {
            let err = rep.confidence_bounds(bad).unwrap_err();
            assert!(
                matches!(err, RelationError::InvalidParameter { what: "delta", .. }),
                "expected InvalidParameter for delta = {bad}, got {err}"
            );
        }
        assert!(rep.confidence_bounds(0.05).is_ok());
    }

    /// Regression: for multiset relations the spurious-tuple count used to
    /// be computed as `join_size − N` in `u128`, underflowing (debug panic,
    /// release wraparound and negative ρ) whenever duplicates made the
    /// set-semantic join smaller than `N`.  The loss is now measured
    /// against the distinct-tuple count.
    #[test]
    fn multiset_relation_loss_measured_against_distinct_tuples() {
        // 3 distinct tuples, one duplicated 3 times: N = 5, distinct = 3.
        let r = Relation::from_rows(
            vec![AttrId(0), AttrId(1)],
            &[
                &[0, 0][..],
                &[0, 0][..],
                &[0, 0][..],
                &[1, 0][..],
                &[1, 1][..],
            ],
        )
        .unwrap();
        assert!(!r.is_set());
        // Join of the singleton projections: {0,1} x {0,1} = 4 < N = 5.
        let rep = Analyzer::new(&r).analyze(&cross_tree()).unwrap();
        assert_eq!(rep.n, 5);
        assert_eq!(rep.distinct_n, 3);
        assert_eq!(rep.join_size, 4);
        assert_eq!(rep.spurious, 1);
        assert!(rep.rho >= 0.0);
        assert!((rep.rho - 1.0 / 3.0).abs() < 1e-12);
        // Per-MVD losses are measured against the same baseline.
        for m in &rep.per_mvd {
            assert!(m.rho >= 0.0);
        }
        // The information side still weights tuples by multiplicity.
        assert!(rep.j_measure >= 0.0);
        assert!((rep.j_measure - rep.kl_nats).abs() < 1e-9);
    }

    #[test]
    fn set_relation_reports_distinct_equal_to_n() {
        let r = bijection_relation(6);
        let rep = Analyzer::new(&r).analyze(&cross_tree()).unwrap();
        assert_eq!(rep.distinct_n, rep.n);
    }

    #[test]
    fn analyzer_matches_free_functions_exactly() {
        let mut rng = StdRng::seed_from_u64(11);
        let model =
            RandomRelationModel::new(ajd_random::ProductDomain::new(vec![5, 4, 4, 3]).unwrap());
        let r = model.sample(&mut rng, 70).unwrap();
        let analyzer = Analyzer::new(&r);
        for tree in [
            JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap(),
            JoinTree::star(vec![bag(&[0, 1]), bag(&[0, 2]), bag(&[0, 3])]).unwrap(),
        ] {
            // Bit-identical floats, not just approximately equal.
            assert_eq!(
                analyzer.j_measure(&tree).unwrap().to_bits(),
                j_measure(&r, &tree).unwrap().to_bits()
            );
            assert_eq!(
                analyzer.kl(&tree).unwrap().to_bits(),
                kl_divergence_to_tree(&r, &tree).unwrap().to_bits()
            );
            assert_eq!(
                analyzer.loss(&tree).unwrap().to_bits(),
                loss_acyclic(&r, &tree).unwrap().to_bits()
            );
            assert_eq!(
                analyzer.join_size(&tree).unwrap(),
                count_acyclic_join(&r, &tree).unwrap()
            );
        }
        // Scalar measures route through the same cache.
        let h = analyzer.entropy(&bag(&[0, 1])).unwrap();
        assert_eq!(h.to_bits(), entropy(&r, &bag(&[0, 1])).unwrap().to_bits());
        assert!(analyzer.cache_stats().hits > 0);
    }

    #[test]
    fn analyzer_mvd_measures_match_direct_calls() {
        let r = conditional_product_relation(3, 3, 2);
        let analyzer = Analyzer::new(&r);
        let mvd = Mvd::new(bag(&[2]), bag(&[0]), bag(&[1])).unwrap();
        assert_eq!(
            analyzer.mvd_join_size(&mvd).unwrap(),
            mvd.join_size(&r).unwrap()
        );
        assert_eq!(
            analyzer.mvd_loss(&mvd).unwrap().to_bits(),
            mvd.loss(&r).unwrap().to_bits()
        );
        assert!(analyzer.mvd_holds(&mvd).unwrap());
        assert_eq!(
            analyzer.mvd_cmi(&mvd).unwrap().to_bits(),
            mvd_cmi(&r, &mvd).unwrap().to_bits()
        );
    }

    #[test]
    fn mismatched_tree_and_relation_are_rejected() {
        let r = bijection_relation(4);
        let tree = JoinTree::new(vec![bag(&[0]), bag(&[2])], vec![(0, 1)]).unwrap();
        assert!(Analyzer::new(&r).analyze(&tree).is_err());
        let empty = Relation::new(vec![AttrId(0), AttrId(1)]).unwrap();
        assert!(Analyzer::new(&empty).analyze(&cross_tree()).is_err());
    }

    #[test]
    fn display_renders_all_sections() {
        let r = bijection_relation(4);
        let rep = Analyzer::new(&r).analyze(&cross_tree()).unwrap();
        let s = format!("{rep}");
        assert!(s.contains("spurious"));
        assert!(s.contains("J-measure"));
        assert!(s.contains("phi_2"));
    }
}
