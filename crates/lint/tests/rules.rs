//! Fixture-based positive/negative tests for every rule, plus the waiver
//! machinery and the lexer edge cases the rules depend on.
//!
//! Each fixture is a small source file handed to [`ajd_lint::lint_source`]
//! under a path that places it in the crate/section the rule targets.  The
//! waiver comments under test live *inside* the fixture strings — the
//! lexer blanks string contents, so nothing here trips the workspace's own
//! lint pass.

use ajd_lint::{lint_source, Report};

fn rules_of(report: &Report) -> Vec<&str> {
    report.findings.iter().map(|f| f.rule).collect()
}

#[track_caller]
fn assert_clean(path: &str, source: &str) {
    let report = lint_source(path, source);
    assert!(
        report.is_clean(),
        "expected no findings for {path}, got:\n{}",
        report.render_text()
    );
}

#[track_caller]
fn assert_finds(path: &str, source: &str, rule: &str, line: usize) {
    let report = lint_source(path, source);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == rule && f.line == line),
        "expected a `{rule}` finding at {path}:{line}, got:\n{}",
        report.render_text()
    );
}

// ---------------------------------------------------------------------
// hash-iter-order
// ---------------------------------------------------------------------

#[test]
fn hash_iter_order_flags_unsorted_iteration() {
    let src = "fn f() {\n\
               let m: FxHashMap<u32, u32> = FxHashMap::default();\n\
               for (k, v) in &m {\n\
               use_pair(k, v);\n\
               }\n\
               }\n";
    assert_finds("crates/relation/src/demo.rs", src, "hash-iter-order", 3);
    // Method-style iteration is caught too.
    let src = "fn f() {\n\
               let seen: HashSet<u64> = HashSet::new();\n\
               let v: Vec<u64> = seen.iter().copied().collect();\n\
               v\n\
               }\n";
    assert_finds("crates/core/src/demo.rs", src, "hash-iter-order", 3);
}

#[test]
fn hash_iter_order_accepts_sorted_and_out_of_scope_twins() {
    // Adjacent sort neutralises the order-dependence.
    let src = "fn f() {\n\
               let m: FxHashMap<u32, u32> = FxHashMap::default();\n\
               let mut pairs: Vec<_> = m.iter().collect();\n\
               pairs.sort();\n\
               }\n";
    assert_clean("crates/relation/src/demo.rs", src);
    // Collecting into a BTree container restores a canonical order.
    let src = "fn f() {\n\
               let m: HashMap<u32, u32> = HashMap::new();\n\
               let ordered: BTreeMap<_, _> = m.iter().collect();\n\
               }\n";
    assert_clean("crates/info/src/demo.rs", src);
    // Same violating code outside a determinism-critical crate: no finding.
    let src = "fn f() {\n\
               let m: FxHashMap<u32, u32> = FxHashMap::default();\n\
               for (k, v) in &m {\n\
               }\n\
               }\n";
    assert_clean("crates/bench/src/demo.rs", src);
    // And in test code inside a determinism crate: no finding.
    let src = "#[cfg(test)]\n\
               mod tests {\n\
               fn f() {\n\
               let m: FxHashMap<u32, u32> = FxHashMap::default();\n\
               for (k, v) in &m {\n\
               }\n\
               }\n\
               }\n";
    assert_clean("crates/relation/src/demo.rs", src);
}

#[test]
fn hash_iter_order_respects_word_boundaries() {
    // `rebuild.iter()` must not match a hash-bound name `build`.
    let src = "fn f() {\n\
               let build: HashMap<u32, u32> = HashMap::new();\n\
               let rebuild: Vec<u32> = Vec::new();\n\
               for x in rebuild.iter() {\n\
               }\n\
               let n = build.len();\n\
               }\n";
    assert_clean("crates/relation/src/demo.rs", src);
}

// ---------------------------------------------------------------------
// silent-arithmetic
// ---------------------------------------------------------------------

#[test]
fn silent_arithmetic_flags_saturating_and_wrapping_ops() {
    let src = "fn f(total: u64, c: u64) -> u64 {\n\
               total.saturating_add(c)\n\
               }\n";
    assert_finds("crates/relation/src/demo.rs", src, "silent-arithmetic", 2);
    let src = "fn f(x: u64) -> u64 {\n\
               x.wrapping_mul(31)\n\
               }\n";
    assert_finds("crates/info/src/demo.rs", src, "silent-arithmetic", 2);
}

#[test]
fn silent_arithmetic_flags_narrowing_count_casts() {
    let src = "fn f(count: u128) -> u64 {\n\
               count as u64\n\
               }\n";
    assert_finds("crates/jointree/src/demo.rs", src, "silent-arithmetic", 2);
    let src = "fn f(total: usize) -> u32 {\n\
               total as u32\n\
               }\n";
    assert_finds("crates/core/src/demo.rs", src, "silent-arithmetic", 2);
}

#[test]
fn silent_arithmetic_covers_test_helpers_but_not_test_casts() {
    // A saturating accumulation in a #[cfg(test)] helper corrupts overflow
    // fixtures — still flagged (the original join.rs:473 bug).
    let src = "#[cfg(test)]\n\
               mod tests {\n\
               fn helper(total: u64, c: u64) -> u64 {\n\
               total.saturating_add(c)\n\
               }\n\
               }\n";
    assert_finds("crates/relation/src/demo.rs", src, "silent-arithmetic", 4);
    // Narrowing casts in test code are fine: assertions narrow known-small
    // values all the time.
    let src = "#[cfg(test)]\n\
               mod tests {\n\
               fn t(count: u128) -> u64 { count as u64 }\n\
               }\n";
    assert_clean("crates/relation/src/demo.rs", src);
}

#[test]
fn silent_arithmetic_accepts_widening_and_non_count_casts() {
    // Widening to u128 is the encouraged direction.
    let src = "fn f(count: u64) -> u128 {\n\
               count as u128\n\
               }\n";
    assert_clean("crates/relation/src/demo.rs", src);
    // Non-count-carrying identifiers may narrow (e.g. dictionary codes).
    let src = "fn f(code: u64) -> u32 {\n\
               code as u32\n\
               }\n";
    assert_clean("crates/relation/src/demo.rs", src);
    // Checked arithmetic is exactly what the rule asks for.
    let src = "fn f(total: u128, c: u128) -> Option<u128> {\n\
               total.checked_add(c)\n\
               }\n";
    assert_clean("crates/relation/src/demo.rs", src);
    // Outside the counting crates the rule does not apply.
    let src = "fn f(total: u64, c: u64) -> u64 {\n\
               total.saturating_add(c)\n\
               }\n";
    assert_clean("crates/randrel/src/demo.rs", src);
}

// ---------------------------------------------------------------------
// panic-in-server
// ---------------------------------------------------------------------

#[test]
fn panic_in_server_flags_unwrap_expect_panic_and_indexing() {
    let p = "crates/server/src/demo.rs";
    assert_finds(
        p,
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        "panic-in-server",
        1,
    );
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               x.expect(\"present\")\n\
               }\n";
    assert_finds(p, src, "panic-in-server", 2);
    let src = "fn f() {\n\
               panic!(\"boom\");\n\
               }\n";
    assert_finds(p, src, "panic-in-server", 2);
    let src = "fn f(v: &[u32]) -> u32 {\n\
               v[3]\n\
               }\n";
    assert_finds(p, src, "panic-in-server", 2);
}

#[test]
fn panic_in_server_accepts_test_code_parser_expect_and_other_crates() {
    // Inside a #[cfg(test)] region of a server source file: fine.
    let src = "#[cfg(test)]\n\
               mod tests {\n\
               fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
               }\n";
    assert_clean("crates/server/src/demo.rs", src);
    // `self.expect(b':')` is the JSON parser's own fallible method.
    let src = "fn f(&mut self) -> Result<(), JsonError> {\n\
               self.expect(b':')\n\
               }\n";
    assert_clean("crates/server/src/demo.rs", src);
    // Integration tests of the server crate are not production code.
    assert_clean(
        "crates/server/tests/demo.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    // unwrap() in a kernel crate is out of this rule's scope.
    assert_clean(
        "crates/relation/src/demo.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
}

// ---------------------------------------------------------------------
// raw-spawn
// ---------------------------------------------------------------------

#[test]
fn raw_spawn_flags_unbudgeted_threads_everywhere_but_parallel_rs() {
    let src = "fn f() {\n\
               std::thread::spawn(|| work());\n\
               }\n";
    assert_finds("crates/jointree/src/demo.rs", src, "raw-spawn", 2);
    assert_finds("crates/server/src/demo.rs", src, "raw-spawn", 2);
    let src = "fn f() {\n\
               let b = thread::Builder::new();\n\
               }\n";
    assert_finds("crates/core/src/demo.rs", src, "raw-spawn", 2);
    // The one blessed door: ajd-relation's parallel.rs.
    let src = "fn f() {\n\
               std::thread::spawn(|| work());\n\
               }\n";
    assert_clean("crates/relation/src/parallel.rs", src);
}

#[test]
fn raw_spawn_ignores_scoped_spawns_and_test_code() {
    // `scope.spawn` under a budget-derived worker count is the idiom.
    let src = "fn f(scope: &Scope) {\n\
               scope.spawn(|| work());\n\
               }\n";
    assert_clean("crates/server/src/demo.rs", src);
    let src = "#[test]\n\
               fn t() { std::thread::spawn(|| work()); }\n";
    assert_clean("crates/core/src/demo.rs", src);
}

// ---------------------------------------------------------------------
// nondeterminism-source
// ---------------------------------------------------------------------

#[test]
fn nondeterminism_source_flags_clocks_and_ambient_rng_in_kernels() {
    let src = "fn f() -> Instant {\n\
               Instant::now()\n\
               }\n";
    assert_finds(
        "crates/relation/src/demo.rs",
        src,
        "nondeterminism-source",
        2,
    );
    let src = "fn f() {\n\
               let t = SystemTime::now();\n\
               }\n";
    assert_finds("crates/info/src/demo.rs", src, "nondeterminism-source", 2);
    let src = "fn f() -> u64 {\n\
               rand::random()\n\
               }\n";
    assert_finds("crates/core/src/demo.rs", src, "nondeterminism-source", 2);
}

#[test]
fn nondeterminism_source_accepts_non_kernel_crates_and_seeded_rng() {
    // The bench harness may read clocks; it is not a kernel crate.
    let src = "fn f() -> Instant {\n\
               Instant::now()\n\
               }\n";
    assert_clean("crates/bench/src/demo.rs", src);
    // Seeded RNG is a pure function of its inputs.
    let src = "fn f(seed: u64) -> StdRng {\n\
               StdRng::seed_from_u64(seed)\n\
               }\n";
    assert_clean("crates/relation/src/demo.rs", src);
}

// ---------------------------------------------------------------------
// raw-sync-primitive
// ---------------------------------------------------------------------

#[test]
fn raw_sync_primitive_flags_std_primitives_and_parking_lot() {
    let src = "fn f() {\n\
               let m: std::sync::Mutex<u32> = std::sync::Mutex::new(0);\n\
               }\n";
    assert_finds("crates/relation/src/demo.rs", src, "raw-sync-primitive", 2);
    // Brace imports are the common spelling.
    let src = "use std::sync::{Arc, OnceLock};\n";
    assert_finds("crates/core/src/demo.rs", src, "raw-sync-primitive", 1);
    // Multiline brace imports name primitives on continuation lines.
    let src = "use std::sync::{\n\
               Condvar,\n\
               Mutex,\n\
               };\n";
    let report = lint_source("crates/server/src/demo.rs", src);
    assert!(rules_of(&report).iter().all(|r| *r == "raw-sync-primitive"));
    assert_eq!(report.findings.len(), 2);
    // parking_lot is flagged wherever it appears.
    let src = "use parking_lot::RwLock;\n";
    assert_finds("crates/jointree/src/demo.rs", src, "raw-sync-primitive", 1);
}

#[test]
fn raw_sync_primitive_accepts_facade_atomics_tests_and_crates_sync() {
    // The facade itself and non-blocking std::sync items are fine.
    let src = "use ajd_sync::{Condvar, Mutex, OnceSlot};\n\
               use std::sync::atomic::{AtomicUsize, Ordering};\n\
               use std::sync::Arc;\n\
               use std::sync::mpsc;\n";
    assert_clean("crates/relation/src/demo.rs", src);
    // Test code may use raw primitives (e.g. std Barrier + friends).
    let src = "#[cfg(test)]\n\
               mod tests {\n\
               use std::sync::Mutex;\n\
               }\n";
    assert_clean("crates/core/src/demo.rs", src);
    // crates/sync is the blessed backend.
    let src = "pub use std::sync::{Condvar, Mutex, RwLock};\n";
    assert_clean("crates/sync/src/real.rs", src);
}

// ---------------------------------------------------------------------
// crate-header-policy
// ---------------------------------------------------------------------

#[test]
fn crate_header_policy_requires_forbid_and_docs_level() {
    // Missing both attributes: two findings at line 1.
    let report = lint_source("crates/relation/src/lib.rs", "pub fn f() {}\n");
    assert_eq!(
        rules_of(&report),
        vec!["crate-header-policy", "crate-header-policy"]
    );
    // A crate on the deny ratchet cannot regress to warn.
    let src = "#![forbid(unsafe_code)]\n\
               #![warn(missing_docs)]\n\
               pub fn f() {}\n";
    assert_finds("crates/server/src/lib.rs", src, "crate-header-policy", 1);
    // A crate not on the ratchet needs at least warn.
    let src = "#![forbid(unsafe_code)]\n\
               pub fn f() {}\n";
    assert_finds("crates/randrel/src/lib.rs", src, "crate-header-policy", 1);
}

#[test]
fn crate_header_policy_accepts_conforming_roots_and_non_roots() {
    let src = "#![forbid(unsafe_code)]\n\
               #![deny(missing_docs)]\n\
               pub fn f() {}\n";
    assert_clean("crates/relation/src/lib.rs", src);
    let src = "#![forbid(unsafe_code)]\n\
               #![warn(missing_docs)]\n\
               pub fn f() {}\n";
    assert_clean("crates/randrel/src/lib.rs", src);
    // Only crate roots are checked; modules carry no header.
    assert_clean("crates/relation/src/join.rs", "pub fn f() {}\n");
}

// ---------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------

#[test]
fn same_line_waiver_suppresses_and_records_the_reason() {
    let src = "fn f(total: u64, c: u64) -> u64 {\n\
               total.saturating_add(c) // ajd: allow(silent-arithmetic, \"capacity heuristic\")\n\
               }\n";
    let report = lint_source("crates/relation/src/demo.rs", src);
    assert!(
        report.is_clean(),
        "waiver must suppress:\n{}",
        report.render_text()
    );
    assert_eq!(report.waived.len(), 1);
    assert_eq!(report.waived[0].finding.rule, "silent-arithmetic");
    assert_eq!(report.waived[0].reason, "capacity heuristic");
}

#[test]
fn preceding_comment_waiver_covers_the_next_code_line() {
    let src = "fn f(total: u64, c: u64) -> u64 {\n\
               // ajd: allow(silent-arithmetic, \"overflow guard only\")\n\
               total.saturating_add(c)\n\
               }\n";
    let report = lint_source("crates/relation/src/demo.rs", src);
    assert!(report.is_clean(), "{}", report.render_text());
    assert_eq!(report.waived.len(), 1);
}

#[test]
fn waiver_for_one_rule_does_not_cover_another() {
    let src = "fn f(x: Option<u64>, total: u64, c: u64) -> u64 {\n\
               // ajd: allow(silent-arithmetic, \"heuristic\")\n\
               x.unwrap() + total.saturating_add(c)\n\
               }\n";
    let report = lint_source("crates/server/src/demo.rs", src);
    assert_eq!(rules_of(&report), vec!["panic-in-server"]);
    assert_eq!(report.waived.len(), 1);
}

#[test]
fn file_level_waiver_covers_the_whole_file() {
    let src = "// ajd: allow-file(panic-in-server, \"prototype transport\")\n\
               fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
               fn g(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let report = lint_source("crates/server/src/demo.rs", src);
    assert!(report.is_clean(), "{}", report.render_text());
    assert_eq!(report.waived.len(), 2);
}

#[test]
fn waiver_without_reason_is_malformed() {
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               x.unwrap() // ajd: allow(panic-in-server)\n\
               }\n";
    let report = lint_source("crates/server/src/demo.rs", src);
    // The malformed waiver is reported AND the finding it failed to waive
    // survives.
    let rules = rules_of(&report);
    assert!(rules.contains(&"malformed-waiver"), "{rules:?}");
    assert!(rules.contains(&"panic-in-server"), "{rules:?}");
}

#[test]
fn waiver_for_unknown_rule_is_malformed() {
    let src = "fn f() {\n\
               work(); // ajd: allow(no-such-rule, \"hm\")\n\
               }\n";
    let report = lint_source("crates/server/src/demo.rs", src);
    assert_eq!(rules_of(&report), vec!["malformed-waiver"]);
}

#[test]
fn unused_waiver_is_stale() {
    let src = "fn f() -> u32 {\n\
               // ajd: allow(panic-in-server, \"not actually needed\")\n\
               0\n\
               }\n";
    let report = lint_source("crates/server/src/demo.rs", src);
    assert_eq!(rules_of(&report), vec!["stale-waiver"]);
}

#[test]
fn meta_findings_cannot_be_waived() {
    // A stale waiver cannot be silenced by waiving `stale-waiver`: the
    // meta rules are not in the waivable catalog, so that waiver is itself
    // malformed — and the stale one is still reported.
    let src = "fn f() -> u32 {\n\
               // ajd: allow(stale-waiver, \"silence the meta rule\")\n\
               // ajd: allow(panic-in-server, \"unused\")\n\
               0\n\
               }\n";
    let report = lint_source("crates/server/src/demo.rs", src);
    let mut rules = rules_of(&report);
    rules.sort_unstable();
    assert_eq!(rules, vec!["malformed-waiver", "stale-waiver"]);
}

// ---------------------------------------------------------------------
// Lexer edge cases, observed through the rules
// ---------------------------------------------------------------------

#[test]
fn string_and_raw_string_contents_do_not_trip_rules() {
    // A raw string *containing* unwrap() is data, not code.
    let src = "fn f() -> &'static str {\n\
               r#\"please call x.unwrap() here\"#\n\
               }\n";
    assert_clean("crates/server/src/demo.rs", src);
    let src = "const HELP: &str = \"total.saturating_add(c) is discouraged\";\n";
    assert_clean("crates/relation/src/demo.rs", src);
}

#[test]
fn comment_contents_do_not_trip_rules() {
    let src = "fn f() {\n\
               // never use thread::spawn( here\n\
               /* nor x.unwrap() in a block comment */\n\
               work();\n\
               }\n";
    assert_clean("crates/server/src/demo.rs", src);
}

#[test]
fn nested_cfg_test_regions_stay_test_code() {
    let src = "#[cfg(test)]\n\
               mod tests {\n\
               mod inner {\n\
               fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
               }\n\
               fn g(x: Option<u32>) -> u32 { x.unwrap() }\n\
               }\n";
    assert_clean("crates/server/src/demo.rs", src);
}

#[test]
fn code_after_a_test_region_is_production_again() {
    let src = "#[cfg(test)]\n\
               mod tests {\n\
               fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
               }\n\
               fn g(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert_finds("crates/server/src/demo.rs", src, "panic-in-server", 5);
}

#[test]
fn doc_comments_never_parse_as_waivers() {
    // `/// ajd: allow(...)` is documentation, not a waiver: the unwrap on
    // the next line must still be reported.
    let src = "/// ajd: allow(panic-in-server, \"docs, not a waiver\")\n\
               fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert_finds("crates/server/src/demo.rs", src, "panic-in-server", 2);
}

// ---------------------------------------------------------------------
// Report plumbing
// ---------------------------------------------------------------------

#[test]
fn findings_are_sorted_and_json_is_parseable_shape() {
    let files = vec![
        (
            "crates/server/src/zz.rs".to_owned(),
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n".to_owned(),
        ),
        (
            "crates/server/src/aa.rs".to_owned(),
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n".to_owned(),
        ),
    ];
    let report = ajd_lint::lint_files(&files);
    assert_eq!(report.files, 2);
    let paths: Vec<&str> = report.findings.iter().map(|f| f.path.as_str()).collect();
    assert_eq!(
        paths,
        vec!["crates/server/src/aa.rs", "crates/server/src/zz.rs"]
    );
    let json = report.render_json();
    assert!(json.starts_with("{\"v\":1,"));
    assert!(json.contains("\"findings\":["));
    assert!(json.contains("panic-in-server"));
}
