//! Small descriptive-statistics helpers for experiment outputs.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample of `f64` values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased, 0 for n < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a sample.  Returns a zeroed summary for an
    /// empty sample.
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min,
            max,
        }
    }
}

/// Fraction of observations for which `predicate` holds.
pub fn fraction_where<T>(values: &[T], predicate: impl Fn(&T) -> bool) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|v| predicate(v)).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_sample_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn single_observation_has_zero_std() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn fraction_where_counts_correctly() {
        let v = [1, 2, 3, 4, 5];
        assert!((fraction_where(&v, |&x| x > 2) - 0.6).abs() < 1e-12);
        assert_eq!(fraction_where::<i32>(&[], |_| true), 0.0);
    }
}
