//! Loss-as-a-service: a query front-end over a catalog of relations.
//!
//! `ajd-server` turns the analysis stack of this workspace — exact loss
//! `ρ(R,S)`, the J-measure, entropies, and schema mining, after Kenig &
//! Weinberger, *"Quantifying the Loss of Acyclic Join Dependencies"*
//! (PODS 2023) — into a long-running service: load relations once, keep
//! their single-flight analysis caches hot, and answer queries over a
//! line-delimited JSON protocol on plain TCP (`std::net`, no external
//! dependencies).
//!
//! The wire format is specified in `docs/PROTOCOL.md` at the repository
//! root; the spec's own JSON examples are executed against a live server
//! by the `protocol_spec` integration test, so spec and implementation
//! cannot drift.
//!
//! # Architecture
//!
//! - [`RelationStore`] — one named catalog entry: attribute catalog +
//!   flat [`Relation`](ajd_relation::Relation) or
//!   [`ShardedRelation`](ajd_relation::ShardedRelation), loaded from
//!   delimited text/files or wrapped directly.
//! - [`Server`] — borrows the stores, builds one
//!   [`Analyzer`](ajd_core::Analyzer) + shared cache per entry, and
//!   dispatches requests.  [`Server::handle_line`] is the transport-free
//!   core; [`Server::serve`] adds the threaded TCP accept loop.
//! - [`AdmissionConfig`] — budget-aware admission control: point queries
//!   (`loss`/`j`/`entropy`/`analyze`) and heavy `mine` sweeps draw from
//!   separate bounded pools, so a mining burst can never starve cheap
//!   queries; overload is answered with a structured `busy` frame.
//! - [`Client`] — a minimal blocking client for the protocol.
//!
//! # Example (transport-free)
//!
//! The whole protocol is testable without a socket through
//! [`Server::handle_line`]:
//!
//! ```
//! use ajd_server::{RelationStore, Server, ServerConfig};
//! use ajd_relation::ReadOptions;
//!
//! let csv = "course,teacher,room\ndb,ann,r1\ndb,ann,r2\nos,bob,r1\n";
//! let stores = vec![RelationStore::from_delimited("courses", csv, ReadOptions::default())?];
//! let server = Server::new(&stores, ServerConfig::default())?;
//!
//! let frame = server.handle_line(
//!     r#"{"op":"loss","relation":"courses","schema":[["course","teacher"],["course","room"]]}"#,
//! );
//! assert_eq!(frame.get("rho").and_then(|r| r.as_f64()), Some(0.0)); // lossless
//! # Ok::<(), ajd_relation::RelationError>(())
//! ```
//!
//! Over the wire the exchange is identical, one JSON object per line; see
//! [`Client`] and the `serve_catalog` / `query_client` examples.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod admission;
pub mod client;
pub mod json;
pub mod protocol;
pub mod server;
pub mod store;

pub use admission::{Admission, AdmissionConfig, Pool, PoolGuard, PoolStats};
pub use client::Client;
pub use json::{Json, JsonError};
pub use protocol::{ErrorCode, Failure, Request, PROTOCOL_VERSION};
pub use server::{Server, ServerConfig, ShutdownToken};
pub use store::{RelationStore, StoreData};
