//! Structured relation generators.
//!
//! Besides the uniform random relation model, the paper's examples and our
//! experiments need several structured families:
//!
//! * [`bijection_relation`] — Example 4.1: `R = {(a₁,b₁),…,(a_N,b_N)}`, the
//!   family for which the Lemma 4.1 lower bound is tight.
//! * [`conditional_product_relation`] — a relation that satisfies the MVD
//!   `C ↠ A | B` exactly (zero loss, zero J-measure).
//! * [`lossless_for_tree`] — the acyclic join `⋈ᵢ R[Ωᵢ]` of an arbitrary
//!   base relation: by construction it models the tree (the `Q_TU`
//!   construction in the proof of Lemma 4.1).
//! * [`approximate_mvd_relation`] — a conditional-product relation with a
//!   controlled fraction of perturbed tuples, giving an *approximate* AJD
//!   (used by the discovery and Proposition 5.1 experiments).
//! * [`markov_chain_relation`] — attributes forming a noisy Markov chain
//!   `X₀ → X₁ → ⋯`, whose natural acyclic schema is the path of consecutive
//!   pairs (used by the schema-discovery experiment).

use crate::model::RandomRelationModel;
use crate::product::ProductDomain;
use ajd_jointree::{acyclic_join, JoinTree};
use ajd_relation::hash::set_with_capacity;
use ajd_relation::{AttrId, Relation, RelationError, Result, Value};
use rand::{Rng, RngExt};

/// Example 4.1: the bijection relation `{(a_i, b_i) : i ∈ [N]}` over
/// attributes `A = X₀`, `B = X₁` with disjoint value interpretations.
///
/// For this family and the schema `{{A},{B}}`,
/// `J = log N = log(1 + ρ(R,S))`: the lower bound of Lemma 4.1 is tight.
pub fn bijection_relation(n: u32) -> Relation {
    let mut r = Relation::with_capacity(vec![AttrId(0), AttrId(1)], n as usize)
        .expect("two distinct attributes");
    for i in 0..n {
        r.push_row(&[i, i]).expect("arity 2 row");
    }
    r
}

/// A relation over `A = X₀`, `B = X₁`, `C = X₂` equal to the full
/// conditional product `{(a,b,c) : a ∈ [d_A], b ∈ [d_B], c ∈ [d_C]}`.
/// The MVD `C ↠ A | B` (and in fact every MVD) holds exactly.
pub fn conditional_product_relation(d_a: u32, d_b: u32, d_c: u32) -> Relation {
    let mut r = Relation::with_capacity(
        vec![AttrId(0), AttrId(1), AttrId(2)],
        (d_a * d_b * d_c) as usize,
    )
    .expect("three distinct attributes");
    for c in 0..d_c {
        for a in 0..d_a {
            for b in 0..d_b {
                r.push_row(&[a, b, c]).expect("arity 3 row");
            }
        }
    }
    r
}

/// Returns the acyclic join `⋈ᵢ R[Ωᵢ]` of `base` over `tree`.
///
/// The result always models the tree (its J-measure is 0), making it the
/// canonical way to build lossless instances of an arbitrary acyclic schema.
/// Beware: the output can be much larger than `base`.
pub fn lossless_for_tree(base: &Relation, tree: &JoinTree) -> Result<Relation> {
    acyclic_join(base, tree)
}

/// A relation that *approximately* satisfies the MVD `C ↠ A | B`.
///
/// For every `c ∈ [d_C]` the generator picks `per_block_a × per_block_b`
/// product blocks and then replaces a `noise` fraction of the block tuples
/// with uniformly random tuples (keeping all tuples distinct).  With
/// `noise = 0` the MVD holds exactly; as `noise` grows both the conditional
/// mutual information and the loss grow.
pub fn approximate_mvd_relation<R: Rng + ?Sized>(
    rng: &mut R,
    d_a: u32,
    d_b: u32,
    d_c: u32,
    per_block_a: u32,
    per_block_b: u32,
    noise: f64,
) -> Result<Relation> {
    if per_block_a > d_a || per_block_b > d_b {
        return Err(RelationError::DomainExhausted {
            requested: per_block_a.max(per_block_b) as u64,
            available: d_a.min(d_b) as u64,
        });
    }
    if !(0.0..=1.0).contains(&noise) {
        return Err(RelationError::SchemaMismatch {
            detail: format!("noise fraction {noise} outside [0,1]"),
        });
    }
    let domain = ProductDomain::for_mvd(d_a as u64, d_b as u64, d_c as u64)?;
    let mut tuples: Vec<[Value; 3]> = Vec::new();
    let mut seen = set_with_capacity(1024);

    for c in 0..d_c {
        // Choose the A-side and B-side of this block.
        let a_vals = crate::sampling::sample_distinct(rng, d_a as u64, per_block_a as u64)?;
        let b_vals = crate::sampling::sample_distinct(rng, d_b as u64, per_block_b as u64)?;
        for &a in &a_vals {
            for &b in &b_vals {
                let t = [a as Value, b as Value, c];
                if seen.insert(domain.encode(&t)?) {
                    tuples.push(t);
                }
            }
        }
    }

    // Perturb a fraction of the tuples: remove them and insert fresh random
    // tuples not already present.
    let n_noise = ((tuples.len() as f64) * noise).round() as usize;
    for _ in 0..n_noise {
        if tuples.is_empty() {
            break;
        }
        let victim = rng.random_range(0..tuples.len());
        let removed = tuples.swap_remove(victim);
        seen.remove(&domain.encode(&removed)?);
        // Draw a replacement not already present (the domain is never full
        // here because we just removed an element).
        loop {
            let idx = rng.random_range(0..domain.size());
            if !seen.contains(&idx) {
                seen.insert(idx);
                let t = domain.decode(idx)?;
                tuples.push([t[0], t[1], t[2]]);
                break;
            }
        }
    }

    let mut r = Relation::with_capacity(vec![AttrId(0), AttrId(1), AttrId(2)], tuples.len())?;
    for t in tuples {
        r.push_row(&t)?;
    }
    Ok(r)
}

/// A relation whose attributes form a noisy Markov chain
/// `X₀ → X₁ → ⋯ → X_{k−1}` over a common domain `[d]`.
///
/// Each tuple starts from a uniform `X₀`; every subsequent attribute copies
/// its predecessor with probability `1 − noise` and is uniform otherwise.
/// Duplicate tuples are kept (multiset semantics) unless `distinct` is set.
/// The natural acyclic schema is the path `{X₀X₁, X₁X₂, …}`, which is what
/// the schema-discovery experiment is expected to find.
pub fn markov_chain_relation<R: Rng + ?Sized>(
    rng: &mut R,
    num_attrs: usize,
    domain: u32,
    n: usize,
    noise: f64,
    distinct: bool,
) -> Result<Relation> {
    if num_attrs == 0 || domain == 0 || n == 0 {
        return Err(RelationError::EmptyInput("markov chain parameters"));
    }
    let schema: Vec<AttrId> = (0..num_attrs).map(AttrId::from).collect();
    let mut r = Relation::with_capacity(schema, n)?;
    let mut row = vec![0 as Value; num_attrs];
    let mut produced = 0usize;
    let mut guard = 0usize;
    let mut seen = set_with_capacity(n);
    while produced < n {
        guard += 1;
        if guard > 100 * n + 1000 {
            // The distinct variant can run out of fresh tuples for tiny
            // domains; report rather than loop forever.
            return Err(RelationError::DomainExhausted {
                requested: n as u64,
                available: produced as u64,
            });
        }
        row[0] = rng.random_range(0..domain);
        for i in 1..num_attrs {
            row[i] = if rng.random_range(0.0..1.0) < noise {
                rng.random_range(0..domain)
            } else {
                row[i - 1]
            };
        }
        if distinct && !seen.insert(row.clone().into_boxed_slice()) {
            continue;
        }
        r.push_row(&row)?;
        produced += 1;
    }
    Ok(r)
}

/// Convenience wrapper: a uniformly random relation (Definition 5.2) over
/// per-attribute domain sizes `dims` with `n` tuples.
pub fn random_relation<R: Rng + ?Sized>(rng: &mut R, dims: &[u64], n: u64) -> Result<Relation> {
    RandomRelationModel::new(ProductDomain::new(dims.to_vec())?).sample(rng, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajd_relation::AttrSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bag(ids: &[u32]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn bijection_relation_shape() {
        let r = bijection_relation(5);
        assert_eq!(r.len(), 5);
        assert_eq!(r.arity(), 2);
        assert!(r.is_set());
        for (i, row) in r.iter_rows().enumerate() {
            assert_eq!(row, &[i as u32, i as u32]);
        }
    }

    #[test]
    fn conditional_product_satisfies_the_mvd() {
        let r = conditional_product_relation(3, 4, 2);
        assert_eq!(r.len(), 24);
        let mvd = ajd_jointree::Mvd::new(bag(&[2]), bag(&[0]), bag(&[1])).unwrap();
        assert!(mvd.holds_in(&r).unwrap());
    }

    #[test]
    fn lossless_for_tree_has_zero_loss() {
        let mut rng = StdRng::seed_from_u64(3);
        let base = random_relation(&mut rng, &[4, 4, 4], 20).unwrap();
        let tree = JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2])]).unwrap();
        let lossless = lossless_for_tree(&base, &tree).unwrap();
        let rho = ajd_jointree::loss_acyclic(&lossless, &tree).unwrap();
        assert!(rho.abs() < 1e-12);
        assert!(base.is_subset_of(&lossless));
    }

    #[test]
    fn approximate_mvd_relation_noise_zero_is_lossless() {
        let mut rng = StdRng::seed_from_u64(9);
        let r = approximate_mvd_relation(&mut rng, 8, 8, 3, 4, 4, 0.0).unwrap();
        assert!(r.is_set());
        let mvd = ajd_jointree::Mvd::new(bag(&[2]), bag(&[0]), bag(&[1])).unwrap();
        assert!(mvd.holds_in(&r).unwrap());
        assert_eq!(r.len(), 3 * 16);
    }

    #[test]
    fn approximate_mvd_relation_noise_increases_loss() {
        let mut rng = StdRng::seed_from_u64(10);
        let clean = approximate_mvd_relation(&mut rng, 16, 16, 4, 8, 8, 0.0).unwrap();
        let noisy = approximate_mvd_relation(&mut rng, 16, 16, 4, 8, 8, 0.3).unwrap();
        let mvd = ajd_jointree::Mvd::new(bag(&[2]), bag(&[0]), bag(&[1])).unwrap();
        assert_eq!(mvd.loss(&clean).unwrap(), 0.0);
        assert!(mvd.loss(&noisy).unwrap() > 0.0);
        assert!(noisy.is_set());
    }

    #[test]
    fn approximate_mvd_relation_validates_parameters() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(approximate_mvd_relation(&mut rng, 4, 4, 2, 8, 2, 0.1).is_err());
        assert!(approximate_mvd_relation(&mut rng, 4, 4, 2, 2, 2, 1.5).is_err());
    }

    #[test]
    fn markov_chain_relation_shapes_and_determinism() {
        let r =
            markov_chain_relation(&mut StdRng::seed_from_u64(4), 4, 8, 200, 0.1, false).unwrap();
        assert_eq!(r.len(), 200);
        assert_eq!(r.arity(), 4);
        let r2 =
            markov_chain_relation(&mut StdRng::seed_from_u64(4), 4, 8, 200, 0.1, false).unwrap();
        assert!(r.set_eq(&r2) || r.canonicalize().row(0) == r2.canonicalize().row(0));
        // Distinct variant produces a set.
        let rd =
            markov_chain_relation(&mut StdRng::seed_from_u64(5), 3, 16, 100, 0.3, true).unwrap();
        assert!(rd.is_set());
        assert_eq!(rd.len(), 100);
    }

    #[test]
    fn markov_chain_relation_rejects_impossible_requests() {
        // 2^2 = 4 possible distinct tuples but 100 requested.
        assert!(
            markov_chain_relation(&mut StdRng::seed_from_u64(6), 2, 2, 100, 0.5, true).is_err()
        );
        assert!(
            markov_chain_relation(&mut StdRng::seed_from_u64(6), 0, 2, 10, 0.5, false).is_err()
        );
    }

    #[test]
    fn markov_chain_low_noise_attributes_are_strongly_correlated() {
        let r =
            markov_chain_relation(&mut StdRng::seed_from_u64(8), 2, 8, 500, 0.05, false).unwrap();
        // With 5% noise, neighbouring attributes agree most of the time.
        let agree = r.iter_rows().filter(|t| t[0] == t[1]).count();
        assert!(agree > 400, "only {agree}/500 agree");
    }

    #[test]
    fn random_relation_convenience_wrapper() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = random_relation(&mut rng, &[5, 5, 5], 30).unwrap();
        assert_eq!(r.len(), 30);
        assert!(r.is_set());
        assert!(random_relation(&mut rng, &[2, 2], 10).is_err());
    }
}
