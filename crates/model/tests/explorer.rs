//! Self-tests for the explorer: exhaustive interleaving of correct code
//! finds nothing, classic bugs (ABBA deadlock, lost notify, non-atomic
//! increment) are found with replayable schedules, and the bounds behave.

use ajd_model::{
    sync::{Condvar, Mutex, OnceSlot},
    thread, Model, ViolationKind,
};
use std::sync::Arc;

// Convenience: the model atomics live in `ajd_model::sync`; alias the
// module path used by tests.
mod atomics {
    pub use ajd_model::sync::{AtomicUsize, Ordering};
}

#[test]
fn correct_counter_is_clean_and_exhausted() {
    let report = Model::new().explore(|| {
        let counter = Arc::new(Mutex::new(0u32));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let c = Arc::clone(&counter);
            handles.push(thread::spawn(move || *c.lock() += 1));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 2);
    });
    assert!(
        report.violation.is_none(),
        "violation: {:?}",
        report.violation
    );
    assert!(
        report.exhausted,
        "tree not exhausted in {} runs",
        report.schedules
    );
    assert!(report.schedules > 1, "no interleaving explored");
}

#[test]
fn non_atomic_increment_is_caught() {
    let report = Model::new().explore(|| {
        let value = Arc::new(Mutex::new(0u32));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let v = Arc::clone(&value);
            handles.push(thread::spawn(move || {
                let read = *v.lock(); // read under one critical section…
                *v.lock() = read + 1; // …write under another: not atomic
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*value.lock(), 2, "lost update");
    });
    let v = report.violation.expect("lost update not found");
    assert_eq!(v.kind, ViolationKind::Panic);
    assert!(!v.schedule.is_empty());
    // The failing schedule replays to the same violation.
    let replayed = Model::new()
        .replay(&v.schedule, || {
            let value = Arc::new(Mutex::new(0u32));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let v = Arc::clone(&value);
                handles.push(thread::spawn(move || {
                    let read = *v.lock();
                    *v.lock() = read + 1;
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*value.lock(), 2, "lost update");
        })
        .expect("replay did not reproduce");
    assert_eq!(replayed.kind, ViolationKind::Panic);
}

#[test]
fn abba_deadlock_is_caught() {
    let report = Model::new().explore(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        t.join().unwrap();
    });
    let v = report.violation.expect("ABBA deadlock not found");
    assert_eq!(v.kind, ViolationKind::Deadlock, "{v}");
    assert!(v.message.contains("blocked acquiring mutex"), "{v}");
}

#[test]
fn lost_notify_is_caught_as_missed_wakeup() {
    let report = Model::new().explore(|| {
        let ready = Arc::new((Mutex::new(false), Condvar::new()));
        let r2 = Arc::clone(&ready);
        let waiter = thread::spawn(move || {
            let (flag, cv) = &*r2;
            let mut g = flag.lock();
            while !*g {
                g = cv.wait(g);
            }
        });
        {
            let (flag, _cv) = &*ready;
            *flag.lock() = true;
            // BUG: no notify_one() — the waiter can sleep forever.
        }
        waiter.join().unwrap();
    });
    let v = report.violation.expect("lost notify not found");
    assert_eq!(v.kind, ViolationKind::MissedWakeup, "{v}");
}

#[test]
fn single_flight_toy_explores_many_schedules() {
    // Acceptance pin: the explorer visits >= 1000 distinct schedules on a
    // 3-racer single-flight body (the same shape as the context-cache
    // model test in ajd-relation).
    let report = Model::new().max_schedules(200_000).explore(|| {
        let slot = Arc::new(OnceSlot::new());
        let computes = Arc::new(atomics::AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let s = Arc::clone(&slot);
            let c = Arc::clone(&computes);
            handles.push(thread::spawn(move || {
                *s.get_or_init(|| {
                    c.fetch_add(1, atomics::Ordering::SeqCst);
                    42u64
                })
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 42);
        }
        assert_eq!(
            computes.load(atomics::Ordering::SeqCst),
            1,
            "single-flight slot computed more than once"
        );
    });
    assert!(
        report.violation.is_none(),
        "violation: {:?}",
        report.violation
    );
    assert!(
        report.schedules >= 1000,
        "only {} schedules explored (acceptance floor is 1000)",
        report.schedules
    );
}

#[test]
fn panic_in_scoped_child_is_reported_as_violation() {
    // A panicking scoped child must surface as a violation of the explored
    // body — not abort the process, and not be masked by a sibling that
    // finishes cleanly.  (Scoped spawns are how every model body in the
    // workspace structures its racers, so this is the failure path they
    // all rely on.)
    let report = Model::new().max_schedules(100).explore(|| {
        thread::scope(|s| {
            s.spawn(|| panic!("boom"));
            s.spawn(|| ());
        });
    });
    let violation = report
        .violation
        .expect("a panicking scoped child must be reported");
    assert_eq!(violation.kind, ViolationKind::Panic);
    assert!(
        violation.message.contains("boom"),
        "the child's panic payload must survive: {violation}"
    );
}

#[test]
fn preemption_bound_zero_misses_the_lost_update() {
    // With no preemptions allowed, each thread runs to completion once
    // scheduled (switches happen only on blocking), so the read/write gap
    // is never split and the lost update cannot manifest…
    let body = || {
        let value = Arc::new(Mutex::new(0u32));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let v = Arc::clone(&value);
            handles.push(thread::spawn(move || {
                let read = *v.lock();
                *v.lock() = read + 1;
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*value.lock(), 2, "lost update");
    };
    let bounded = Model::new().preemption_bound(0).explore(body);
    assert!(
        bounded.violation.is_none(),
        "bound 0 should not reach the racy interleaving: {:?}",
        bounded.violation
    );
    // …while a budget of 2 preemptions finds it.
    let relaxed = Model::new().preemption_bound(2).explore(body);
    assert!(
        relaxed.violation.is_some(),
        "bound 2 should find the lost update"
    );
}

#[test]
fn livelock_trips_the_op_budget() {
    let report = Model::new().max_ops(500).max_schedules(5).explore(|| {
        let flag = Arc::new(Mutex::new(false));
        // Spin forever on a condition nobody sets: pure livelock.
        loop {
            if *flag.lock() {
                break;
            }
            thread::yield_now();
        }
    });
    let v = report.violation.expect("livelock not detected");
    assert_eq!(v.kind, ViolationKind::OpBudget, "{v}");
}

#[test]
fn model_bounds_come_from_env() {
    // Use a value large enough that concurrently constructed Models in
    // other tests are unaffected if they observe it transiently.
    std::env::set_var("AJD_MODEL_MAX_SCHEDULES", "250000");
    let dbg = format!("{:?}", Model::new());
    std::env::remove_var("AJD_MODEL_MAX_SCHEDULES");
    assert!(dbg.contains("max_schedules: 250000"), "{dbg}");
}

#[test]
fn primitives_fall_back_to_std_outside_a_run() {
    // No Model involved: the same types must behave like std ones.
    let m = Mutex::new(1u32);
    *m.lock() += 1;
    assert_eq!(m.into_inner(), 2);
    let slot = OnceSlot::new();
    assert_eq!(*slot.get_or_init(|| 7u8), 7);
    assert_eq!(slot.set(9), Err(9));
    let t = thread::spawn(|| 5u8);
    assert_eq!(t.join().unwrap(), 5);
    let total = thread::scope(|s| {
        let h1 = s.spawn(|| 2u32);
        let h2 = s.spawn(|| 3u32);
        h1.join().unwrap() + h2.join().unwrap()
    });
    assert_eq!(total, 5);
    let a = atomics::AtomicUsize::new(3);
    assert_eq!(a.fetch_add(2, atomics::Ordering::SeqCst), 3);
    assert_eq!(a.into_inner(), 5);
}
