//! Thread budgeting for the deterministic parallel grouping engine.
//!
//! Every measure in the paper reduces to group counts on attribute subsets
//! (eq. 4/7, Theorem 3.2), so grouping throughput is the hardware ceiling
//! for the whole analysis stack.  The grouping kernel
//! ([`crate::Relation::group_ids_with`]) can therefore partition its row
//! scan across threads — but *who decides how many threads* must be one
//! coherent story, or layers fight each other (a batch fan-out spawning
//! kernels that each spawn their own full complement of workers).
//!
//! [`ThreadBudget`] is that story: a single knob, owned at the top of a
//! computation (an `ajd_core::Analyzer`, a `BatchAnalyzer`, a bare
//! [`crate::AnalysisContext`]) and passed down.  It defaults to
//! [`std::thread::available_parallelism`] and is clamped so the kernel
//! never shards below [`MIN_CHUNK_ROWS`] rows per worker — for small
//! relations the parallel path degenerates to the serial kernel and costs
//! nothing.
//!
//! **Determinism guarantee:** the budget only chooses *how many chunks* the
//! row scan is partitioned into; chunk results are merged in chunk order so
//! first-appearance group numbering — and therefore `GroupIds`,
//! `GroupCounts` and every measure derived from them — is **bit-identical**
//! to the serial kernel at any budget (property-tested in
//! `tests/prop_parallel.rs`).

use std::num::NonZeroUsize;

/// Minimum number of rows a parallel grouping worker must have to be worth
/// spawning.  Below `2 × MIN_CHUNK_ROWS` total rows the kernel always runs
/// serially: thread spawn plus merge overhead would dominate.
pub const MIN_CHUNK_ROWS: usize = 4096;

/// Hard ceiling on the number of chunks (and therefore spawned OS threads)
/// of one parallel grouping, regardless of the requested worker count.
/// Far above any real hardware budget, but low enough that a pathological
/// `group_ids_chunked(attrs, huge)` call cannot exhaust the process's
/// thread limit (`std::thread::scope` would abort on a failed spawn).
pub const MAX_CHUNK_WORKERS: usize = 256;

/// How many threads a computation may use — the single parallelism knob of
/// the workspace.
///
/// A budget is a *cap*, not a demand: the grouping kernel spawns fewer
/// workers when the relation is too small to shard profitably (see
/// [`ThreadBudget::workers_for_rows`]), and exactly one (i.e. runs inline)
/// for [`ThreadBudget::serial`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadBudget(NonZeroUsize);

impl ThreadBudget {
    /// A budget of exactly one thread: everything runs inline on the caller.
    pub fn serial() -> Self {
        ThreadBudget(NonZeroUsize::MIN)
    }

    /// The machine's available parallelism
    /// ([`std::thread::available_parallelism`]), falling back to one thread
    /// when the platform cannot report it.
    pub fn available() -> Self {
        ThreadBudget(std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN))
    }

    /// An explicit budget of `threads` threads (zero is clamped to one).
    pub fn new(threads: usize) -> Self {
        ThreadBudget(NonZeroUsize::new(threads.max(1)).expect("max(1) is non-zero"))
    }

    /// The number of threads this budget allows.
    pub fn get(self) -> usize {
        self.0.get()
    }

    /// `true` if this budget forces inline execution.
    pub fn is_serial(self) -> bool {
        self.get() == 1
    }

    /// Number of grouping workers to actually spawn for a relation of
    /// `rows` rows: the budget, clamped so every worker scans at least
    /// [`MIN_CHUNK_ROWS`] rows.  Returns 1 (serial) for small relations.
    pub fn workers_for_rows(self, rows: usize) -> usize {
        self.get().min(rows / MIN_CHUNK_ROWS).max(1)
    }
}

/// The default budget is the machine's available parallelism — the
/// "as fast as the hardware allows" setting every top-level entry point
/// (`Analyzer`, `BatchAnalyzer`, `SchemaMiner::mine`) starts from.
impl Default for ThreadBudget {
    fn default() -> Self {
        Self::available()
    }
}

impl From<usize> for ThreadBudget {
    fn from(threads: usize) -> Self {
        Self::new(threads)
    }
}

/// Splits `rows` into `workers` contiguous, near-equal chunks in row order
/// (the first `rows % workers` chunks are one row longer).  Empty chunks are
/// produced when `workers > rows` so chunk indices stay aligned.
pub(crate) fn chunk_bounds(rows: usize, workers: usize) -> Vec<(usize, usize)> {
    let workers = workers.max(1);
    let base = rows / workers;
    let extra = rows % workers;
    let mut bounds = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        bounds.push((start, start + len));
        start += len;
    }
    debug_assert_eq!(start, rows);
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_clamps_and_reports() {
        assert_eq!(ThreadBudget::serial().get(), 1);
        assert!(ThreadBudget::serial().is_serial());
        assert_eq!(ThreadBudget::new(0).get(), 1);
        assert_eq!(ThreadBudget::new(6).get(), 6);
        assert!(!ThreadBudget::new(6).is_serial());
        assert_eq!(ThreadBudget::from(3).get(), 3);
        assert!(ThreadBudget::available().get() >= 1);
        assert_eq!(ThreadBudget::default(), ThreadBudget::available());
    }

    #[test]
    fn workers_respect_min_chunk() {
        let b = ThreadBudget::new(8);
        // Tiny relations run serially regardless of the budget.
        assert_eq!(b.workers_for_rows(0), 1);
        assert_eq!(b.workers_for_rows(MIN_CHUNK_ROWS - 1), 1);
        assert_eq!(b.workers_for_rows(2 * MIN_CHUNK_ROWS), 2);
        // Large relations get the full budget, never more.
        assert_eq!(b.workers_for_rows(100 * MIN_CHUNK_ROWS), 8);
        assert_eq!(ThreadBudget::serial().workers_for_rows(1 << 20), 1);
    }

    #[test]
    fn chunks_partition_contiguously() {
        for (rows, workers) in [(10, 3), (4096, 4), (7, 9), (0, 2), (1, 1)] {
            let bounds = chunk_bounds(rows, workers);
            assert_eq!(bounds.len(), workers);
            let mut expect = 0;
            for &(s, e) in &bounds {
                assert_eq!(s, expect);
                assert!(e >= s);
                expect = e;
            }
            assert_eq!(expect, rows);
        }
        // Balanced: chunk lengths differ by at most one.
        let bounds = chunk_bounds(10, 3);
        let lens: Vec<usize> = bounds.iter().map(|&(s, e)| e - s).collect();
        assert_eq!(lens, vec![4, 3, 3]);
    }
}
