//! Offline stand-in for the subset of `criterion` this workspace's benches
//! use.
//!
//! The build environment has no crates.io access, so this crate provides a
//! source-compatible harness: `criterion_group!`/`criterion_main!`, benchmark
//! groups, per-input benchmarks and `Bencher::iter`. Instead of criterion's
//! full statistical machinery it reports the median of a fixed number of
//! timed batches — enough to eyeball regressions locally and to keep the
//! bench targets compiling (CI compiles benches but does not run them).

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Keep local runs quick; this shim reports medians, not CIs.
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

/// Units processed per iteration, for derived rates in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the throughput used to derive rates for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for source compatibility; the shim sizes runs by time, not
    /// by sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f`, timing calls to `Bencher::iter`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            budget: self.criterion.measurement_time,
            median: None,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            budget: self.criterion.measurement_time,
            median: None,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Ends the group. (No-op beyond marking the end in the report.)
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let median = match bencher.median {
            Some(m) => m,
            None => return,
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!(" ({:.3e} elem/s)", n as f64 / median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!(" ({:.3e} B/s)", n as f64 / median.as_secs_f64())
            }
            _ => String::new(),
        };
        eprintln!("  {}/{}: median {:?}{}", self.name, id.id, median, rate);
    }
}

/// Times a closure over repeated batches.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    median: Option<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the median per-iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up and per-iteration cost estimate.
        let warmup = Instant::now();
        black_box(routine());
        let first = warmup.elapsed().max(Duration::from_nanos(1));

        // Spread the time budget over a handful of batches and take the
        // median batch to damp scheduler noise.
        const BATCHES: usize = 5;
        let per_batch = self.budget / BATCHES as u32;
        let iters_per_batch = (per_batch.as_nanos() / first.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut samples: Vec<Duration> = (0..BATCHES)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters_per_batch {
                    black_box(routine());
                }
                start.elapsed() / iters_per_batch as u32
            })
            .collect();
        samples.sort_unstable();
        self.median = Some(samples[BATCHES / 2]);
    }
}

/// Declares a benchmark group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(64));
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0u64..64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * n)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_and_records_medians() {
        let mut criterion = Criterion {
            measurement_time: Duration::from_millis(10),
        };
        demo(&mut criterion);
    }

    criterion_group!(benches, demo);

    #[test]
    fn group_runner_is_callable() {
        // `benches` would normally be called from `criterion_main!`.
        let _: fn() = benches;
    }
}
