//! Mutual information and conditional mutual information.
//!
//! Equation (4) of the paper:
//! `I(A; B | C) = H(B∪C) + H(A∪C) − H(A∪B∪C) − H(C)`, taken over the
//! empirical distribution of the relation.  `I(A;B|C) = 0` exactly when the
//! conditional independence `A ⊥ B | C` holds, which for set relations is
//! equivalent to the MVD `C ↠ A | B` holding (Lee's theorem, Theorem 2.1 for
//! the two-bag case).
//!
//! All functions are generic over [`GroupSource`]: pass `&Relation` for a
//! one-shot computation or a shared source (an `AnalysisContext`, via
//! `ajd_core::Analyzer`) so the four entropy terms — which recur massively
//! across the candidate MVDs of a search — come from a memoized cache.

use crate::entropy::entropy;
use ajd_jointree::Mvd;
use ajd_relation::{AttrSet, GroupSource, Result};

/// Mutual information `I(A; B)` in nats.
///
/// Overlapping attributes are allowed: by the chain rule
/// `I(A;B) = I(A\B ; B\A | A∩B) + H(A∩B)`; here we simply evaluate the
/// entropy formula on the sets as given, which is what the paper's
/// simplified MVD notation does.
pub fn mutual_information<S: GroupSource>(src: &S, a: &AttrSet, b: &AttrSet) -> Result<f64> {
    conditional_mutual_information(src, a, b, &AttrSet::empty())
}

/// Conditional mutual information `I(A; B | C)` in nats (eq. 4).
pub fn conditional_mutual_information<S: GroupSource>(
    src: &S,
    a: &AttrSet,
    b: &AttrSet,
    c: &AttrSet,
) -> Result<f64> {
    let hac = entropy(src, &a.union(c))?;
    let hbc = entropy(src, &b.union(c))?;
    let habc = entropy(src, &a.union(b).union(c))?;
    let hc = entropy(src, c)?;
    Ok(hac + hbc - habc - hc)
}

/// The conditional mutual information associated with an MVD
/// `φ = C ↠ A | B`, namely `I(A; B | C)` over the empirical distribution of
/// the source relation.
///
/// By the chain rule this equals `I(C∪A; C∪B | C)`, so it does not matter
/// that [`Mvd`] stores its sides inclusive of the separator; we evaluate on
/// the exclusive sides, which touches fewer columns.
pub fn mvd_cmi<S: GroupSource>(src: &S, mvd: &Mvd) -> Result<f64> {
    conditional_mutual_information(src, &mvd.left_exclusive(), &mvd.right_exclusive(), &mvd.lhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajd_relation::{AnalysisContext, AttrId, Relation};

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        let s: Vec<AttrId> = schema.iter().map(|&i| AttrId(i)).collect();
        Relation::from_rows(s, rows).unwrap()
    }

    fn bag(ids: &[u32]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    /// Product relation: A and B independent given C (the MVD C ->> A|B holds).
    fn conditional_product() -> Relation {
        let mut rows = Vec::new();
        for c in 0..2u32 {
            for a in 0..3u32 {
                for b in 0..2u32 {
                    rows.push(vec![a, b, c]);
                }
            }
        }
        rel(
            &[0, 1, 2],
            &rows.iter().map(Vec::as_slice).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn independent_attributes_have_zero_mi() {
        let r = conditional_product();
        let mi = mutual_information(&r, &bag(&[0]), &bag(&[1])).unwrap();
        assert!(mi.abs() < 1e-12);
    }

    #[test]
    fn identical_attributes_have_mi_equal_to_entropy() {
        // B == A: I(A;B) = H(A).
        let rows: Vec<Vec<u32>> = (0..6u32).map(|i| vec![i % 3, i % 3]).collect();
        let r = rel(&[0, 1], &rows.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let mi = mutual_information(&r, &bag(&[0]), &bag(&[1])).unwrap();
        assert!((mi - (3.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn bijection_relation_mi_is_ln_n() {
        // Example 4.1: I(A;B) = log N.
        let n = 9u32;
        let rows: Vec<Vec<u32>> = (0..n).map(|i| vec![i, i]).collect();
        let r = rel(&[0, 1], &rows.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let mi = mutual_information(&r, &bag(&[0]), &bag(&[1])).unwrap();
        assert!((mi - (n as f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn cmi_zero_iff_mvd_holds() {
        let r = conditional_product();
        let cmi = conditional_mutual_information(&r, &bag(&[0]), &bag(&[1]), &bag(&[2])).unwrap();
        assert!(cmi.abs() < 1e-12);

        // Remove one tuple: the MVD no longer holds, CMI becomes positive.
        let mut broken_rows: Vec<Vec<u32>> = r.iter_rows().map(|t| t.to_vec()).collect();
        broken_rows.pop();
        let broken = rel(
            &[0, 1, 2],
            &broken_rows.iter().map(Vec::as_slice).collect::<Vec<_>>(),
        );
        let cmi_b =
            conditional_mutual_information(&broken, &bag(&[0]), &bag(&[1]), &bag(&[2])).unwrap();
        assert!(cmi_b > 1e-6);
    }

    #[test]
    fn cmi_is_symmetric_in_a_and_b() {
        let r = rel(
            &[0, 1, 2],
            &[&[0, 0, 0], &[0, 1, 1], &[1, 0, 1], &[1, 1, 0], &[2, 1, 0]],
        );
        let x = conditional_mutual_information(&r, &bag(&[0]), &bag(&[1]), &bag(&[2])).unwrap();
        let y = conditional_mutual_information(&r, &bag(&[1]), &bag(&[0]), &bag(&[2])).unwrap();
        assert!((x - y).abs() < 1e-12);
    }

    #[test]
    fn cmi_is_nonnegative_on_arbitrary_relations() {
        let r = rel(
            &[0, 1, 2, 3],
            &[
                &[0, 0, 0, 1],
                &[0, 1, 1, 0],
                &[1, 0, 1, 1],
                &[1, 1, 0, 0],
                &[2, 2, 2, 2],
                &[2, 0, 1, 2],
            ],
        );
        for (a, b, c) in [
            (bag(&[0]), bag(&[1]), bag(&[2])),
            (bag(&[0, 1]), bag(&[2]), bag(&[3])),
            (bag(&[0]), bag(&[2, 3]), AttrSet::empty()),
            (bag(&[0]), bag(&[1]), bag(&[2, 3])),
        ] {
            let v = conditional_mutual_information(&r, &a, &b, &c).unwrap();
            assert!(v > -1e-12, "CMI must be non-negative, got {v}");
        }
    }

    #[test]
    fn cmi_with_overlapping_sides_matches_exclusive_sides() {
        // Footnote 1 of the paper: I(Ω1:i-1; Ωi:m | Δ) = I(Ω1:i-1\Δ; Ωi:m\Δ | Δ).
        let r = rel(
            &[0, 1, 2],
            &[&[0, 0, 0], &[0, 1, 1], &[1, 0, 1], &[1, 1, 0], &[2, 1, 1]],
        );
        let c = bag(&[1]);
        let full = conditional_mutual_information(&r, &bag(&[0, 1]), &bag(&[1, 2]), &c).unwrap();
        let excl = conditional_mutual_information(&r, &bag(&[0]), &bag(&[2]), &c).unwrap();
        assert!((full - excl).abs() < 1e-12);
    }

    #[test]
    fn mvd_cmi_matches_direct_computation() {
        let r = rel(
            &[0, 1, 2],
            &[&[0, 0, 0], &[0, 1, 1], &[1, 0, 1], &[1, 1, 0], &[2, 1, 1]],
        );
        let m = Mvd::new(bag(&[1]), bag(&[0]), bag(&[2])).unwrap();
        let via_mvd = mvd_cmi(&r, &m).unwrap();
        let direct =
            conditional_mutual_information(&r, &bag(&[0]), &bag(&[2]), &bag(&[1])).unwrap();
        assert!((via_mvd - direct).abs() < 1e-12);
    }

    #[test]
    fn cached_and_fresh_cmis_are_bit_identical() {
        let r = rel(
            &[0, 1, 2],
            &[&[0, 0, 0], &[0, 1, 1], &[1, 0, 1], &[1, 1, 0], &[2, 1, 1]],
        );
        let ctx = AnalysisContext::new(&r);
        for (a, b, c) in [
            (bag(&[0]), bag(&[1]), bag(&[2])),
            (bag(&[0, 1]), bag(&[2]), AttrSet::empty()),
            (bag(&[0]), bag(&[2]), bag(&[1])),
        ] {
            let fresh = conditional_mutual_information(&r, &a, &b, &c).unwrap();
            let cached = conditional_mutual_information(&ctx, &a, &b, &c).unwrap();
            assert_eq!(fresh.to_bits(), cached.to_bits());
        }
        assert!(ctx.stats().hits > 0, "the CMI terms must share groupings");
    }

    #[test]
    fn data_processing_style_inequality_on_markov_chain() {
        // A -> B -> C (C is a function of B, B a function of A):
        // I(A;C) <= I(A;B).
        let rows: Vec<Vec<u32>> = (0..12u32)
            .map(|i| {
                let a = i;
                let b = i % 4;
                let c = b % 2;
                vec![a, b, c]
            })
            .collect();
        let r = rel(
            &[0, 1, 2],
            &rows.iter().map(Vec::as_slice).collect::<Vec<_>>(),
        );
        let iac = mutual_information(&r, &bag(&[0]), &bag(&[2])).unwrap();
        let iab = mutual_information(&r, &bag(&[0]), &bag(&[1])).unwrap();
        assert!(iac <= iab + 1e-12);
    }

    #[test]
    fn unknown_attribute_errors() {
        let r = rel(&[0, 1], &[&[0, 0]]);
        assert!(mutual_information(&r, &bag(&[0]), &bag(&[9])).is_err());
    }
}
