//! The sublinear estimation tier: [`EstimatedAnalyzer`] and [`Estimate`].
//!
//! The paper's §5 is a concentration toolkit — Theorem 5.1/5.2 bound how
//! far sampled information measures stray from the truth — and this module
//! is where the workspace finally *consumes* it at analysis time.  An
//! [`EstimatedAnalyzer`] answers the same questions as the exact
//! [`Analyzer`] (`entropy` / `cmi` / `j_measure` / `loss`) from a seeded
//! without-replacement row sample, in time proportional to the sample, and
//! returns every answer as an [`Estimate`] carrying the point value, the
//! (ε, δ) it comes with and the concentration bound that justifies it —
//! never a bare `f64`.
//!
//! ## The sampling pipeline
//!
//! 1. **Plan** — a [`SamplePlanner`] inverts a concentration bound into the
//!    sample size `n` needed for the configured `(ε, δ)`:
//!    [`SamplePlanner::Practical`] inverts the McDiarmid plug-in-entropy
//!    deviation ([`ajd_bounds::sample_size_for_entropy_epsilon`]);
//!    [`SamplePlanner::Theorem51`] inverts the paper's `ε*(φ, N, δ)`
//!    ([`ajd_bounds::required_n_for_epsilon`]), which is rigorous but so
//!    conservative it almost always falls back to exact.
//! 2. **Draw** — `n` distinct row indices are drawn without replacement by
//!    [`ajd_random::sample_distinct`] from a [`rand::StdRng`] seeded with
//!    the explicit [`EstimateConfig::seed`] (no ambient entropy — the
//!    `nondeterminism-source` lint enforces this), then sorted ascending.
//! 3. **Gather** — [`ajd_relation::GroupKernel::gather_rows`] materialises
//!    the sampled rows as a fresh flat [`ajd_relation::Relation`].  Because
//!    the gather rebuilds from decoded values in global row order, the same
//!    `(relation, seed, ε)` produces a **bit-identical** sample from a flat
//!    or sharded source, at any thread budget.
//! 4. **Measure** — the exact kernel runs over the sample (itself
//!    bit-identical at any budget), and the deviation bound for the actual
//!    sample size is attached to the answer.
//!
//! ## Fallback
//!
//! When the planned sample size is at least the relation size (or the
//! planner reports the target unreachable), the analyzer transparently
//! holds an exact [`Analyzer`] over the original source: every answer is
//! then **bit-identical** to the exact path and reports `ε = 0` with
//! [`BoundKind::Exact`].  Small inputs therefore never pay for, or wobble
//! from, sampling.
//!
//! ## Sketches
//!
//! Where only *how many distinct groups* is needed, no sample or group
//! table is materialised at all: [`EstimatedAnalyzer::distinct_groups`]
//! streams the full source through a seeded
//! [`ajd_relation::KmvSketch`] in `O(k)` memory.

use crate::analysis::Analyzer;
use ajd_bounds::{
    entropy_mcdiarmid_epsilon, required_n_for_epsilon, sample_size_for_entropy_epsilon,
};
use ajd_jointree::JoinTree;
use ajd_random::sample_distinct;
use ajd_relation::{AttrSet, GroupKernel, Relation, RelationError, Result, ThreadBudget};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which concentration bound the sample-size planner inverts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplePlanner {
    /// Invert the McDiarmid plug-in-entropy deviation
    /// ([`ajd_bounds::entropy_mcdiarmid_epsilon`]).  Practical sample sizes
    /// (≈10⁵ for ε = 0.1 nats), the default.
    #[default]
    Practical,
    /// Invert the paper's Theorem 5.1 deviation `ε*(φ, N, δ)`
    /// ([`ajd_bounds::required_n_for_epsilon`]), instantiated with the
    /// source's largest single-attribute domains.  Rigorous for the
    /// conditional-mutual-information measures the theorem covers, but its
    /// constants are so conservative that realistic targets plan samples
    /// far beyond the relation — i.e. this mode usually falls back to the
    /// exact kernel.
    Theorem51,
}

/// Configuration of an [`EstimatedAnalyzer`]: the (ε, δ) target, the
/// explicit sampling seed, the planner that turns the target into a sample
/// size, and the `k` of distinct-count sketches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateConfig {
    /// Target deviation for a single entropy query, in nats (must be > 0).
    /// Compound measures report their (larger) union-bound ε honestly.
    pub epsilon: f64,
    /// Failure probability: each answer's deviation bound holds with
    /// probability at least `1 − δ` (must be in `(0, 1)`).
    pub delta: f64,
    /// Seed of the row draw and of sketch hashing.  The same
    /// `(relation, seed, ε, δ)` always reproduces bit-identical estimates.
    pub seed: u64,
    /// Sample-size planner (see [`SamplePlanner`]).
    pub planner: SamplePlanner,
    /// Number of minimum values retained by [`EstimatedAnalyzer::distinct_groups`]
    /// sketches (relative error `≈ 1/√(δ·(k−2))`).
    pub sketch_k: usize,
}

impl Default for EstimateConfig {
    fn default() -> Self {
        EstimateConfig {
            epsilon: 0.1,
            delta: 0.05,
            seed: 0,
            planner: SamplePlanner::default(),
            sketch_k: 1024,
        }
    }
}

impl EstimateConfig {
    /// The default configuration with a different target ε (nats).
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// This configuration with a different failure probability δ.
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// This configuration with a different sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// This configuration with a different sample-size planner.
    pub fn with_planner(mut self, planner: SamplePlanner) -> Self {
        self.planner = planner;
        self
    }

    /// Validates ε and δ, mirroring the error vocabulary of the rest of the
    /// workspace ([`RelationError::InvalidParameter`]).
    pub fn validate(&self) -> Result<()> {
        if !(self.epsilon > 0.0 && self.epsilon.is_finite()) {
            return Err(RelationError::InvalidParameter {
                what: "epsilon",
                detail: format!("must be a positive finite number, got {}", self.epsilon),
            });
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(RelationError::InvalidParameter {
                what: "delta",
                detail: format!("must be in (0,1), got {}", self.delta),
            });
        }
        Ok(())
    }
}

/// The concentration argument behind an [`Estimate`]'s (ε, δ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// Computed by the exact kernel: ε = 0, no probability involved.
    Exact,
    /// McDiarmid bounded-differences deviation of a single plug-in entropy
    /// ([`ajd_bounds::entropy_mcdiarmid_epsilon`]) plus the observed-support
    /// plug-in bias allowance.
    McDiarmid,
    /// A union bound over the McDiarmid deviations of several entropy terms
    /// (CMI = 4 terms, J-measure = bags + separators + 1), each at `δ/terms`.
    McDiarmidUnion,
    /// The J-measure union bound read on the `ln(1+ρ)` scale through the
    /// Lemma 4.1 correspondence `J(T) ≤ ln(1+ρ)`: ε bounds the deviation of
    /// the information-theoretic surrogate, not of ρ itself.
    Log1pLoss,
    /// K-minimum-values distinct-count sketch with a Chebyshev tail
    /// ([`ajd_relation::KmvSketch::relative_epsilon`]); ε is *relative*.
    Kmv,
    /// The paper's Theorem 5.1 deviation `ε*(φ, N, δ)` (used by
    /// [`crate::LossReport::confidence_bounds`]).
    Theorem51,
}

impl BoundKind {
    /// Stable lower-case name (the wire encoding of the server's
    /// `estimate` op).
    pub fn as_str(&self) -> &'static str {
        match self {
            BoundKind::Exact => "exact",
            BoundKind::McDiarmid => "mcdiarmid",
            BoundKind::McDiarmidUnion => "mcdiarmid-union",
            BoundKind::Log1pLoss => "log1p-loss",
            BoundKind::Kmv => "kmv",
            BoundKind::Theorem51 => "theorem-5.1",
        }
    }
}

/// A point estimate together with the (ε, δ) it comes with, the sampling
/// provenance, and the concentration bound justifying it.
///
/// Every answer of the estimation tier — and, through
/// [`crate::LossEngine`], of the exact tier — is an `Estimate`, never a
/// bare number.  Exact answers use `ε = δ = 0`, no seed, and
/// `sample_rows == total_rows`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate<T> {
    /// The point value.
    pub value: T,
    /// Deviation bound in the units of [`BoundKind`] (nats for entropy
    /// bounds, relative for [`BoundKind::Kmv`]); `0` when exact.
    pub epsilon: f64,
    /// Failure probability of the deviation bound; `0` when exact.
    pub delta: f64,
    /// The sampling / sketching seed, `None` when exact.
    pub seed: Option<u64>,
    /// Rows (or retained sketch hashes) the value was computed from.
    pub sample_rows: u64,
    /// Rows of the underlying relation.
    pub total_rows: u64,
    /// The concentration argument behind (ε, δ).
    pub bound: BoundKind,
}

impl<T> Estimate<T> {
    /// An exact answer: ε = δ = 0, no seed, sample = whole relation.
    pub fn exact(value: T, total_rows: u64) -> Self {
        Estimate {
            value,
            epsilon: 0.0,
            delta: 0.0,
            seed: None,
            sample_rows: total_rows,
            total_rows,
            bound: BoundKind::Exact,
        }
    }

    /// `true` if this answer came from the exact kernel.
    pub fn is_exact(&self) -> bool {
        matches!(self.bound, BoundKind::Exact)
    }

    /// Maps the point value, keeping the uncertainty metadata.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Estimate<U> {
        Estimate {
            value: f(self.value),
            epsilon: self.epsilon,
            delta: self.delta,
            seed: self.seed,
            sample_rows: self.sample_rows,
            total_rows: self.total_rows,
            bound: self.bound,
        }
    }
}

/// The two operating modes of an [`EstimatedAnalyzer`].
enum Engine<S> {
    /// Planned sample ≥ relation (or target unreachable): hold an exact
    /// [`Analyzer`] over the original source.  Bit-identical to the exact
    /// path by construction.
    Exact(Analyzer<S>),
    /// Sampled: the original source (kept for sketches and metadata) plus
    /// an exact [`Analyzer`] over the gathered sample relation.
    Sampled {
        source: S,
        analyzer: Analyzer<Relation>,
    },
}

/// Sampling-based analyzer answering `entropy` / `cmi` / `j_measure` /
/// `loss` within a planned ±ε, deterministically from an explicit seed.
///
/// Construction does all the one-time work (plan → draw → gather); each
/// measure then runs the exact kernel over the sample and attaches the
/// deviation bound for the actual sample size.  See the [module
/// docs](self) for the pipeline and the fallback rule.
///
/// ```
/// use ajd_core::{EstimateConfig, EstimatedAnalyzer};
/// use ajd_relation::{AttrSet, Relation};
///
/// // 12 rows: far below any planned sample, so the analyzer falls back to
/// // the exact kernel and reports ε = 0.
/// let rows: Vec<[u32; 2]> = (0..12).map(|i| [i % 3, i % 4]).collect();
/// let r = Relation::from_rows(vec![0u32.into(), 1u32.into()], &rows).unwrap();
/// let est = EstimatedAnalyzer::new(&r, EstimateConfig::default()).unwrap();
/// let h = est.entropy(&AttrSet::from_ids([0])).unwrap();
/// assert!(est.is_fallback() && h.is_exact() && h.epsilon == 0.0);
/// assert_eq!(h.sample_rows, 12);
/// ```
pub struct EstimatedAnalyzer<S> {
    engine: Engine<S>,
    config: EstimateConfig,
    /// Rows of the underlying relation.
    total_rows: u64,
    /// Rows the measures actually run over (== `total_rows` on fallback).
    sample_rows: u64,
}

impl<S: GroupKernel> EstimatedAnalyzer<S> {
    /// Plans, draws and gathers the sample (or falls back to exact) under
    /// the default thread budget.
    pub fn new(source: S, config: EstimateConfig) -> Result<Self> {
        Self::with_thread_budget(source, config, ThreadBudget::default())
    }

    /// [`EstimatedAnalyzer::new`] with an explicit [`ThreadBudget`] for the
    /// measure kernel.  The budget never affects values — only wall-clock.
    pub fn with_thread_budget(
        source: S,
        config: EstimateConfig,
        budget: ThreadBudget,
    ) -> Result<Self> {
        config.validate()?;
        let total_rows = source.num_rows() as u64;
        let planned = plan_sample_size(&source, &config, total_rows)?;
        if planned.is_none_or(|n| n >= total_rows) {
            // Whole-relation fallback: exact kernel over the original source.
            return Ok(EstimatedAnalyzer {
                engine: Engine::Exact(Analyzer::with_thread_budget(source, budget)),
                config,
                total_rows,
                sample_rows: total_rows,
            });
        }
        let n = planned.expect("checked Some above");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut indices = sample_distinct(&mut rng, total_rows, n)?;
        indices.sort_unstable();
        let sample = source.gather_rows(&indices)?;
        Ok(EstimatedAnalyzer {
            engine: Engine::Sampled {
                source,
                analyzer: Analyzer::with_thread_budget(sample, budget),
            },
            config,
            total_rows,
            sample_rows: n,
        })
    }

    /// The configuration this analyzer was built with.
    pub fn config(&self) -> &EstimateConfig {
        &self.config
    }

    /// Rows of the underlying relation.
    pub fn total_rows(&self) -> u64 {
        self.total_rows
    }

    /// Rows the measures run over (== [`EstimatedAnalyzer::total_rows`] on
    /// fallback).
    pub fn sample_rows(&self) -> u64 {
        self.sample_rows
    }

    /// `true` if the planned sample covered the whole relation and the
    /// analyzer operates in exact mode.
    pub fn is_fallback(&self) -> bool {
        matches!(self.engine, Engine::Exact(_))
    }

    /// The original source.
    pub fn source(&self) -> &S {
        match &self.engine {
            Engine::Exact(a) => a.source(),
            Engine::Sampled { source, .. } => source,
        }
    }

    /// Shannon entropy `H(attrs)` of the empirical distribution (nats).
    pub fn entropy(&self, attrs: &AttrSet) -> Result<Estimate<f64>> {
        match &self.engine {
            Engine::Exact(a) => Ok(Estimate::exact(a.entropy(attrs)?, self.total_rows)),
            Engine::Sampled { analyzer, .. } => {
                let value = analyzer.entropy(attrs)?;
                self.entropy_union_estimate(
                    value,
                    std::slice::from_ref(attrs),
                    BoundKind::McDiarmid,
                )
            }
        }
    }

    /// Mutual information `I(A;B)` (nats): a union bound over its three
    /// entropy terms.
    pub fn mutual_information(&self, a: &AttrSet, b: &AttrSet) -> Result<Estimate<f64>> {
        match &self.engine {
            Engine::Exact(an) => Ok(Estimate::exact(
                an.mutual_information(a, b)?,
                self.total_rows,
            )),
            Engine::Sampled { analyzer, .. } => {
                let value = analyzer.mutual_information(a, b)?;
                let terms = [a.clone(), b.clone(), a.union(b)];
                self.entropy_union_estimate(value, &terms, BoundKind::McDiarmidUnion)
            }
        }
    }

    /// Conditional mutual information `I(A;B|C)` (nats): a union bound over
    /// its four entropy terms.
    pub fn cmi(&self, a: &AttrSet, b: &AttrSet, c: &AttrSet) -> Result<Estimate<f64>> {
        match &self.engine {
            Engine::Exact(an) => Ok(Estimate::exact(an.cmi(a, b, c)?, self.total_rows)),
            Engine::Sampled { analyzer, .. } => {
                let value = analyzer.cmi(a, b, c)?;
                let terms = [a.union(c), b.union(c), a.union(b).union(c), c.clone()];
                self.entropy_union_estimate(value, &terms, BoundKind::McDiarmidUnion)
            }
        }
    }

    /// The J-measure `J(T)` of a join tree (nats): a union bound over its
    /// bag, separator and whole-relation entropy terms.
    pub fn j_measure(&self, tree: &JoinTree) -> Result<Estimate<f64>> {
        match &self.engine {
            Engine::Exact(a) => Ok(Estimate::exact(a.j_measure(tree)?, self.total_rows)),
            Engine::Sampled { analyzer, .. } => {
                let value = analyzer.j_measure(tree)?;
                let terms = j_entropy_terms(tree);
                self.entropy_union_estimate(value, &terms, BoundKind::McDiarmidUnion)
            }
        }
    }

    /// The loss `ρ` of a join tree, estimated from the sample.
    ///
    /// The point value is the exact loss *of the sample*; the attached ε is
    /// the J-measure union bound read on the `ln(1+ρ)` scale through the
    /// Lemma 4.1 correspondence `J(T) ≤ ln(1+ρ)` ([`BoundKind::Log1pLoss`])
    /// — it bounds the deviation of the information-theoretic surrogate,
    /// not of ρ itself.
    pub fn loss(&self, tree: &JoinTree) -> Result<Estimate<f64>> {
        match &self.engine {
            Engine::Exact(a) => Ok(Estimate::exact(a.loss(tree)?, self.total_rows)),
            Engine::Sampled { analyzer, .. } => {
                let value = analyzer.loss(tree)?;
                let terms = j_entropy_terms(tree);
                let mut est = self.entropy_union_estimate(value, &terms, BoundKind::Log1pLoss)?;
                est.value = value;
                Ok(est)
            }
        }
    }

    /// Number of distinct `attrs`-groups, from a K-minimum-values sketch
    /// streamed over the **full** source in `O(sketch_k)` memory — no group
    /// table, no sample.  ε is *relative* ([`BoundKind::Kmv`]); the answer
    /// is exact (ε = 0) when the source has fewer than `sketch_k` distinct
    /// groups.
    pub fn distinct_groups(&self, attrs: &AttrSet) -> Result<Estimate<f64>> {
        let sketch =
            self.source()
                .distinct_sketch(attrs, self.config.sketch_k, self.config.seed)?;
        if sketch.is_exact() {
            return Ok(Estimate::exact(sketch.estimate(), self.total_rows));
        }
        Ok(Estimate {
            value: sketch.estimate(),
            epsilon: sketch.relative_epsilon(self.config.delta),
            delta: self.config.delta,
            seed: Some(self.config.seed),
            sample_rows: sketch.len() as u64,
            total_rows: self.total_rows,
            bound: BoundKind::Kmv,
        })
    }

    /// Builds the sampled-path estimate for a value composed of the given
    /// entropy terms: per-term McDiarmid deviation at `δ/terms` plus the
    /// observed-support plug-in bias allowance, summed over the terms.
    fn entropy_union_estimate(
        &self,
        value: f64,
        terms: &[AttrSet],
        bound: BoundKind,
    ) -> Result<Estimate<f64>> {
        let analyzer = match &self.engine {
            Engine::Sampled { analyzer, .. } => analyzer,
            Engine::Exact(_) => unreachable!("sampled-path helper called in fallback mode"),
        };
        let n = self.sample_rows;
        let per_delta = self.config.delta / terms.len() as f64;
        let deviation = terms.len() as f64 * entropy_mcdiarmid_epsilon(n, per_delta);
        // Plug-in entropy is biased low by at most ln(1 + (k−1)/n) for true
        // support k; the observed sample support is the best available
        // stand-in for k (a lower bound, so this allowance is indicative —
        // SamplePlanner::Theorem51 is the rigorous mode).
        let mut bias = 0.0;
        for attrs in terms {
            let k = analyzer.context().group_counts(attrs)?.num_groups() as f64;
            bias += ((k - 1.0).max(0.0) / n as f64).ln_1p();
        }
        Ok(Estimate {
            value,
            epsilon: deviation + bias,
            delta: self.config.delta,
            seed: Some(self.config.seed),
            sample_rows: n,
            total_rows: self.total_rows,
            bound,
        })
    }
}

/// The entropy terms of the J-measure of a tree: one per bag, one per
/// separator, plus the whole relation.
fn j_entropy_terms(tree: &JoinTree) -> Vec<AttrSet> {
    let mut terms: Vec<AttrSet> = tree.bags().to_vec();
    terms.extend(tree.separators());
    terms.push(tree.attributes());
    terms
}

/// Runs the configured planner: `Ok(None)` means "target unreachable below
/// the relation size" (→ fallback), `Ok(Some(n))` the planned sample size.
fn plan_sample_size<S: GroupKernel>(
    source: &S,
    config: &EstimateConfig,
    total_rows: u64,
) -> Result<Option<u64>> {
    if total_rows == 0 {
        return Ok(None);
    }
    Ok(match config.planner {
        SamplePlanner::Practical => {
            sample_size_for_entropy_epsilon(config.epsilon, config.delta, total_rows)
        }
        SamplePlanner::Theorem51 => {
            // Instantiate φ = (A, B | C) with the largest single-attribute
            // active domains: d_a, d_b the top two, d_c the (capped)
            // product of the rest — the hardest single-attribute MVD this
            // source can pose to Theorem 5.1.
            let mut domains: Vec<u64> = Vec::with_capacity(source.arity());
            for a in source.attrs().iter() {
                domains.push(source.active_domain_size(a)? as u64);
            }
            domains.sort_unstable_by(|x, y| y.cmp(x));
            let d_a = domains.first().copied().unwrap_or(1).max(1);
            let d_b = domains.get(1).copied().unwrap_or(1).max(1);
            let d_c = domains[2.min(domains.len())..]
                .iter()
                // ajd: allow(silent-arithmetic, "planning heuristic, not a count: the domain product only sizes the Theorem 5.1 sample and is clamped to total_rows on the next line, so saturation cannot change any reported quantity")
                .fold(1u64, |acc, &d| acc.saturating_mul(d.max(1)))
                .min(total_rows);
            required_n_for_epsilon(d_a, d_b, d_c, config.delta, config.epsilon, total_rows)
        }
    })
}
