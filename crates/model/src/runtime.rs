//! The cooperative scheduler: virtual threads, yield points, blocking
//! states, and the per-run decision trace.
//!
//! A model run executes the test body on *virtual threads* — real OS
//! threads, of which **exactly one is runnable at a time**.  Every
//! instrumented operation (lock acquire, condvar wait/notify, once-slot
//! init, atomic access, spawn, join, explicit yield) calls into the
//! [`Runtime`], which parks the calling thread and hands control to the
//! controller loop on the main thread.  The controller picks the next
//! thread to resume; whenever more than one thread is runnable that pick
//! is a recorded **decision**, and the explorer (see [`crate::explore`])
//! drives a depth-first search over all decision sequences.
//!
//! Because only one virtual thread ever runs between two yield points, a
//! run is fully determined by its decision sequence — which is what makes
//! failing schedules replayable (`AJD_MODEL_REPLAY`).
//!
//! The runtime deliberately models **sequential consistency**: atomic
//! `Ordering` arguments are accepted but all interleavings are explored
//! under SC.  See `docs/CONCURRENCY.md` for what that does and does not
//! prove.

// ajd: allow-file(raw-sync-primitive, "this file IS the instrumentation layer: the runtime implements the virtual-thread handshake that every ajd-sync primitive is routed through under cfg(ajd_model), so it must sit directly on std::sync")

use std::cell::RefCell;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, PoisonError};

/// A panic payload carried out of a virtual thread.
pub(crate) type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Sentinel unwound through virtual threads when a run is being aborted
/// (violation found or exploration cancelled); caught by the thread
/// wrapper, never surfaced to user code.
pub(crate) struct AbortToken;

/// Why a virtual thread is not currently runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Block {
    /// Ready to run; the controller may pick it.
    Runnable,
    /// Waiting to acquire the mutex with this object id.
    Lock(usize),
    /// Waiting for read access to the rwlock with this object id.
    RwRead(usize),
    /// Waiting for write access to the rwlock with this object id.
    RwWrite(usize),
    /// Waiting on the condvar with this object id.
    Cond(usize),
    /// Waiting for the once-slot with this object id to be filled.
    Once(usize),
    /// Waiting for the virtual thread with this id to finish.
    Join(usize),
    /// The thread's closure has returned (or unwound).
    Finished,
}

impl Block {
    fn is_blocked(self) -> bool {
        !matches!(self, Block::Runnable | Block::Finished)
    }

    /// Human-readable label for violation reports.
    pub(crate) fn describe(self) -> String {
        match self {
            Block::Runnable => "runnable".to_owned(),
            Block::Lock(id) => format!("blocked acquiring mutex #{id}"),
            Block::RwRead(id) => format!("blocked acquiring rwlock #{id} (read)"),
            Block::RwWrite(id) => format!("blocked acquiring rwlock #{id} (write)"),
            Block::Cond(id) => format!("blocked in condvar #{id} wait"),
            Block::Once(id) => format!("blocked on in-flight once-slot #{id}"),
            Block::Join(t) => format!("blocked joining thread {t}"),
            Block::Finished => "finished".to_owned(),
        }
    }
}

/// One recorded decision: the runnable candidates offered (sorted thread
/// ids) and which index was taken.
#[derive(Debug, Clone)]
pub(crate) struct Choice {
    pub options: Vec<usize>,
    pub taken: usize,
}

impl Choice {
    /// The thread id this choice resumed (or woke).
    pub(crate) fn chosen_thread(&self) -> usize {
        self.options[self.taken.min(self.options.len().saturating_sub(1))]
    }
}

/// The kind of violation a run ended with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// All live threads are blocked and force-waking the condvar waiters
    /// did not let the program make progress.
    Deadlock,
    /// All live threads were blocked, but force-waking the condvar
    /// waiters (the moral equivalent of a spurious wakeup) let the
    /// program proceed: a waiter was asleep while its predicate held,
    /// i.e. a notify was lost or never sent.
    MissedWakeup,
    /// A virtual thread panicked (assertion failure in the test body, or
    /// a propagated library panic).
    Panic,
    /// A replayed schedule did not match the program's actual decision
    /// points (the code under test changed since the schedule was saved).
    Divergence,
    /// A single run exceeded the per-run operation budget — a livelock or
    /// an unbounded retry loop.
    OpBudget,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ViolationKind::Deadlock => "deadlock",
            ViolationKind::MissedWakeup => "missed wakeup (lost notify)",
            ViolationKind::Panic => "panic",
            ViolationKind::Divergence => "schedule divergence",
            ViolationKind::OpBudget => "operation budget exceeded (livelock?)",
        };
        f.write_str(s)
    }
}

/// A failure recorded during one run.
#[derive(Debug, Clone)]
pub(crate) struct Failure {
    pub kind: ViolationKind,
    pub message: String,
}

struct TState {
    block: Block,
    /// A condvar wakeup (real notify or deadlock probe) was delivered.
    notified: bool,
}

/// Whose turn it is to run.  The handshake is state- (not edge-)
/// triggered: everyone waits on one condvar and re-checks this field, so
/// a notification can never be lost to a thread that has not parked yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Turn {
    Controller,
    Thread(usize),
}

pub(crate) struct RtState {
    turn: Turn,
    threads: Vec<TState>,
    /// The last-resumed thread (for preemption accounting).
    current: usize,
    /// Replay prefix: thread ids to choose at successive decision points.
    script: Vec<usize>,
    /// Position of the next decision in `script`.
    cursor: usize,
    /// Decisions actually taken this run (the run's full schedule).
    trace: Vec<Choice>,
    preemptions: usize,
    preemption_bound: Option<usize>,
    max_ops: u64,
    ops: u64,
    failure: Option<Failure>,
    aborting: bool,
    /// The all-blocked probe has fired this run.
    probed: bool,
    next_object: usize,
}

/// The per-run scheduler shared by the controller and every virtual
/// thread of that run.
pub(crate) struct Runtime {
    state: StdMutex<RtState>,
    turn_cv: StdCondvar,
}

/// A virtual thread's handle to its runtime.
#[derive(Clone)]
pub(crate) struct Handle {
    pub rt: Arc<Runtime>,
    pub me: usize,
}

thread_local! {
    static CURRENT: RefCell<Option<Handle>> = const { RefCell::new(None) };
}

/// The runtime handle of the calling OS thread, if it is a virtual
/// thread of an active model run.
pub(crate) fn current() -> Option<Handle> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Runs `f` with the thread-local handle installed (virtual-thread
/// wrapper); restores the previous value afterwards even on unwind.
pub(crate) fn with_handle<T>(handle: Handle, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<Handle>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let prev = CURRENT.with(|c| c.borrow_mut().replace(handle));
    let _restore = Restore(prev);
    f()
}

impl Runtime {
    pub(crate) fn new(script: Vec<usize>, preemption_bound: Option<usize>, max_ops: u64) -> Self {
        Runtime {
            state: StdMutex::new(RtState {
                turn: Turn::Controller,
                threads: Vec::new(),
                current: usize::MAX,
                script,
                cursor: 0,
                trace: Vec::new(),
                preemptions: 0,
                preemption_bound,
                max_ops,
                ops: 0,
                failure: None,
                aborting: false,
                probed: false,
                next_object: 0,
            }),
            turn_cv: StdCondvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RtState> {
        // A virtual thread only ever panics *outside* this lock (the
        // guard is dropped before `panic_any`), so poisoning here means a
        // bug in the runtime itself; recovering the data is still the
        // most debuggable behaviour.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a new virtual thread and returns its id.  Called by the
    /// spawning (parent) thread before the OS thread starts, so the
    /// controller can never observe a spawn "in flight".
    pub(crate) fn register(&self) -> usize {
        let mut st = self.lock();
        st.threads.push(TState {
            block: Block::Runnable,
            notified: false,
        });
        st.threads.len() - 1
    }

    /// Fresh object id for a primitive (mutex, condvar, …).
    pub(crate) fn new_object_id(&self) -> usize {
        let mut st = self.lock();
        let id = st.next_object;
        st.next_object += 1;
        id
    }

    // ------------------------------------------------------------------
    // Virtual-thread side
    // ------------------------------------------------------------------

    /// The universal scheduling point: parks the calling thread in state
    /// `block` and hands control to the controller; returns once the
    /// controller resumes this thread.  Panics with [`AbortToken`] when
    /// the run is being torn down.
    pub(crate) fn yield_as(&self, me: usize, block: Block) {
        let mut st = self.lock();
        st.ops += 1;
        if st.ops > st.max_ops && st.failure.is_none() {
            st.failure = Some(Failure {
                kind: ViolationKind::OpBudget,
                message: format!(
                    "run exceeded {} scheduled operations; the body likely livelocks \
                     (an unbounded retry loop with no blocking operation)",
                    st.max_ops
                ),
            });
            st.aborting = true;
        }
        st.threads[me].block = block;
        st.turn = Turn::Controller;
        self.turn_cv.notify_all();
        while st.turn != Turn::Thread(me) {
            st = self
                .turn_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let abort = st.aborting;
        drop(st);
        if abort {
            std::panic::panic_any(AbortToken);
        }
    }

    /// Marks the calling thread runnable again after a blocking yield
    /// (the caller re-checks its wait condition in a loop).
    pub(crate) fn yield_runnable(&self, me: usize) {
        self.yield_as(me, Block::Runnable);
    }

    /// Parks a freshly spawned virtual thread until the controller first
    /// resumes it.  Unlike [`Runtime::yield_as`] this does *not* hand the
    /// turn to the controller — the spawning thread still holds it.
    pub(crate) fn wait_first(&self, me: usize) {
        let mut st = self.lock();
        while st.turn != Turn::Thread(me) {
            st = self
                .turn_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let abort = st.aborting;
        drop(st);
        if abort {
            std::panic::panic_any(AbortToken);
        }
    }

    /// Parks the thread as a condvar waiter; returns once a notify (or
    /// the deadlock probe) targets it.
    pub(crate) fn condvar_wait(&self, me: usize, cv: usize) {
        {
            let mut st = self.lock();
            st.threads[me].notified = false;
        }
        loop {
            self.yield_as(me, Block::Cond(cv));
            let st = self.lock();
            if st.threads[me].notified {
                return;
            }
            // Resumed without a wakeup (can happen transiently while the
            // controller re-parks threads); wait again.
        }
    }

    /// Delivers a condvar wakeup to one waiter.  When several threads
    /// wait on the same condvar this is a *decision point*: real
    /// condvars make no ordering promise, so the explorer tries every
    /// waiter.  Returns `true` if a waiter was woken.
    pub(crate) fn notify_one(&self, cv: usize) -> bool {
        let mut st = self.lock();
        let waiters: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.block == Block::Cond(cv))
            .map(|(i, _)| i)
            .collect();
        if waiters.is_empty() {
            return false;
        }
        let chosen = if waiters.len() == 1 {
            waiters[0]
        } else {
            let idx = Self::decide(&mut st, &waiters);
            waiters[idx]
        };
        st.threads[chosen].notified = true;
        st.threads[chosen].block = Block::Runnable;
        true
    }

    /// Delivers a condvar wakeup to every waiter.
    pub(crate) fn notify_all(&self, cv: usize) {
        let mut st = self.lock();
        for t in st.threads.iter_mut() {
            if t.block == Block::Cond(cv) {
                t.notified = true;
                t.block = Block::Runnable;
            }
        }
    }

    /// Marks every thread blocked in state `block` runnable (lock
    /// released, once-slot filled, …); they re-contend when scheduled.
    pub(crate) fn wake(&self, block: Block) {
        let mut st = self.lock();
        for t in st.threads.iter_mut() {
            if t.block == block {
                t.block = Block::Runnable;
            }
        }
    }

    /// Marks the calling thread finished and wakes its joiners.  The
    /// thread must not yield again afterwards.
    pub(crate) fn finish(&self, me: usize) {
        let mut st = self.lock();
        st.threads[me].block = Block::Finished;
        for t in st.threads.iter_mut() {
            if t.block == Block::Join(me) {
                t.block = Block::Runnable;
            }
        }
        st.turn = Turn::Controller;
        self.turn_cv.notify_all();
    }

    /// `true` once the virtual thread `id` has finished.
    pub(crate) fn is_finished(&self, id: usize) -> bool {
        self.lock().threads[id].block == Block::Finished
    }

    /// Records a panic from a virtual thread (first failure wins) and
    /// switches the run into abort mode.  Returns `true` if this panic
    /// was recorded (i.e. was not an [`AbortToken`]).
    pub(crate) fn record_panic(&self, payload: &PanicPayload) -> bool {
        if payload.downcast_ref::<AbortToken>().is_some() {
            return false;
        }
        let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "virtual thread panicked with a non-string payload".to_owned()
        };
        let mut st = self.lock();
        if st.failure.is_none() {
            st.failure = Some(Failure {
                kind: ViolationKind::Panic,
                message,
            });
        }
        st.aborting = true;
        true
    }

    /// Switches the run into abort mode and hands the turn back to the
    /// controller on behalf of a thread that is unwinding and cannot
    /// yield again — a scope owner about to block in
    /// `std::thread::scope`'s implicit OS-level join.  The caller must
    /// hold the turn; it is left [`Block::Runnable`] so the abort drain
    /// eventually re-picks it (its [`Runtime::finish`] call, once the
    /// unwind escapes the scope, needs no turn of its own).
    pub(crate) fn abort_and_release(&self, me: usize) {
        let mut st = self.lock();
        st.aborting = true;
        st.threads[me].block = Block::Runnable;
        st.turn = Turn::Controller;
        self.turn_cv.notify_all();
    }

    /// Records a schedule-divergence failure (replay only).
    fn record_divergence(st: &mut RtState, detail: String) {
        if st.failure.is_none() {
            st.failure = Some(Failure {
                kind: ViolationKind::Divergence,
                message: detail,
            });
        }
        st.aborting = true;
    }

    /// Picks among `options` (sorted thread ids) following the replay
    /// script where available, defaulting to the first option; records
    /// the decision in the trace.  Shared by the controller's scheduling
    /// picks and `notify_one`'s waiter picks, which keeps one uniform,
    /// replayable decision stream.
    fn decide(st: &mut RtState, options: &[usize]) -> usize {
        let taken = if st.cursor < st.script.len() {
            let want = st.script[st.cursor];
            match options.iter().position(|&t| t == want) {
                Some(idx) => idx,
                None => {
                    Self::record_divergence(
                        st,
                        format!(
                            "replay schedule step {} wants thread {want}, but the \
                             candidates here are {options:?}; the code under test has \
                             changed since this schedule was recorded",
                            st.cursor
                        ),
                    );
                    0
                }
            }
        } else {
            0
        };
        st.cursor += 1;
        st.trace.push(Choice {
            options: options.to_vec(),
            taken,
        });
        taken
    }

    // ------------------------------------------------------------------
    // Controller side
    // ------------------------------------------------------------------

    /// Runs the scheduling loop on the controller (main) thread until
    /// every virtual thread has finished.  Returns the run's trace,
    /// failure (if any), and whether the deadlock probe fired.
    pub(crate) fn control(&self) -> RunOutcome {
        let mut st = self.lock();
        // Wait for the root thread to register.
        while st.threads.is_empty() {
            drop(st);
            std::thread::yield_now();
            st = self.lock();
        }
        loop {
            // Wait until it is the controller's turn.
            while st.turn != Turn::Controller {
                st = self
                    .turn_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            let runnable: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.block == Block::Runnable)
                .map(|(i, _)| i)
                .collect();
            if runnable.is_empty() {
                if st.threads.iter().all(|t| t.block == Block::Finished) {
                    break; // run complete
                }
                // Every live thread is blocked.
                let cond_waiters: Vec<usize> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| matches!(t.block, Block::Cond(_)))
                    .map(|(i, _)| i)
                    .collect();
                if !st.aborting && !st.probed && !cond_waiters.is_empty() {
                    // Probe: force-wake every condvar waiter (legal under
                    // std's spurious-wakeup license).  If the program now
                    // finishes, a waiter was asleep with its predicate
                    // satisfied — a missed wakeup.  If it deadlocks
                    // again, it is a genuine deadlock.
                    st.probed = true;
                    for &i in &cond_waiters {
                        st.threads[i].notified = true;
                        st.threads[i].block = Block::Runnable;
                    }
                    continue;
                }
                // Genuine deadlock (or re-deadlock after the probe).
                if st.failure.is_none() {
                    let states: Vec<String> = st
                        .threads
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| t.block != Block::Finished)
                        .map(|(i, t)| format!("thread {i}: {}", t.block.describe()))
                        .collect();
                    st.failure = Some(Failure {
                        kind: ViolationKind::Deadlock,
                        message: format!(
                            "all live threads are blocked and no wakeup can arrive — \
                             {}",
                            states.join("; ")
                        ),
                    });
                }
                st.aborting = true;
                // Wake everything so the blocked threads unwind and the
                // OS threads can exit (their next resume aborts them).
                for t in st.threads.iter_mut() {
                    if t.block.is_blocked() {
                        t.block = Block::Runnable;
                        t.notified = true;
                    }
                }
                continue;
            }
            // Pick the next thread.  Under abort we drain threads in
            // *descending* id order without recording decisions: children
            // are always registered after the thread that spawned them, so
            // leaf threads unwind first.  Draining an owner before its
            // scoped children would deadlock the teardown — the owner's
            // abort unwind blocks in `std::thread::scope`'s implicit OS
            // join until every child OS thread has exited.
            let chosen = if st.aborting {
                *runnable.last().expect("runnable is non-empty here")
            } else {
                let options = self.filtered_options(&st, &runnable);
                if options.len() == 1 {
                    options[0]
                } else {
                    let idx = Self::decide(&mut st, &options);
                    options[idx]
                }
            };
            if chosen != st.current
                && st
                    .threads
                    .get(st.current)
                    .is_some_and(|t| t.block == Block::Runnable)
            {
                st.preemptions += 1;
            }
            st.current = chosen;
            st.turn = Turn::Thread(chosen);
            self.turn_cv.notify_all();
        }
        let probed = st.probed;
        let failure = st.failure.clone().or_else(|| {
            probed.then(|| Failure {
                kind: ViolationKind::MissedWakeup,
                message: "all live threads were blocked, but force-waking the condvar \
                          waiters (a legal spurious wakeup) let the program finish: a \
                          waiter was asleep while its wait condition already held, so a \
                          notify was lost or never sent"
                    .to_owned(),
            })
        });
        RunOutcome {
            trace: std::mem::take(&mut st.trace),
            failure,
        }
    }

    /// Applies the preemption bound: switching away from a still-runnable
    /// `current` thread is a preemption; once the budget is spent the
    /// current thread must keep running (if it can).
    fn filtered_options(&self, st: &RtState, runnable: &[usize]) -> Vec<usize> {
        if let Some(bound) = st.preemption_bound {
            if st.preemptions >= bound
                && st
                    .threads
                    .get(st.current)
                    .is_some_and(|t| t.block == Block::Runnable)
                && runnable.contains(&st.current)
            {
                return vec![st.current];
            }
        }
        runnable.to_vec()
    }
}

/// What one run produced: its decision trace and terminal failure.
pub(crate) struct RunOutcome {
    pub trace: Vec<Choice>,
    pub failure: Option<Failure>,
}
