//! Live drift monitoring over an append-only relation.
//!
//! Run with `cargo run --release --example watch_drift`.
//!
//! A [`LiveAnalyzer`] serves an append-only stream: batches of rows land
//! as shards, each append installs a new epoch, and readers keep pinning
//! consistent snapshots.  Here we mine an acyclic schema from the first
//! (clean) batch, then stream increasingly noisy batches in and re-check
//! the schema's J-measure and realised loss after every append — the
//! "does yesterday's schema still fit today's data" loop.
//!
//! The interesting part is the cost: thanks to the two-tier cache
//! (per-shard group tables survive appends; only the merged results are
//! per-epoch), each re-check re-groups **only the newly appended shard**.
//! The per-shard counters printed each round prove it — misses grow by
//! the number of cached attribute sets, not by `shards × sets`.

use ajd::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One batch of the stream: `B` is a function of `A` except with
/// probability `noise`, where it is drawn uniformly — so the clean-data
/// MVD `A ↠ B | C` (and the schema `{A,B},{A,C}`) degrades as `noise`
/// grows.
fn batch(rng: &mut StdRng, n: usize, noise: f64) -> Relation {
    let schema = vec![AttrId(0), AttrId(1), AttrId(2)];
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|_| {
            let a = rng.random_range(0..24u32);
            let b = if rng.random_bool(noise) {
                rng.random_range(0..24u32)
            } else {
                (a * 7 + 1) % 24
            };
            let c = rng.random_range(0..12u32);
            vec![a, b, c]
        })
        .collect();
    let rows: Vec<&[Value]> = rows.iter().map(|r| &r[..]).collect();
    Relation::from_rows(schema, &rows).expect("generated rows match the schema")
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // Epoch 1: a clean batch; mine the schema we will keep monitoring.
    let live = LiveAnalyzer::from_initial_shard(batch(&mut rng, 2_000, 0.0))
        .expect("initial batch ingests");
    let mined = live
        .pin()
        .mine(DiscoveryConfig::default())
        .expect("mining the clean batch succeeds");
    let bags = mined.tree.bags().len();
    println!(
        "mined schema from the clean batch: {bags} bags, J = {:.4} nats",
        mined.j_measure
    );

    for step in 1..=6u32 {
        let noise = f64::from(step) * 0.08;
        live.append_shard(batch(&mut rng, 1_000, noise))
            .expect("appended batch ingests");
        // Pin one snapshot and answer both measures from it.
        let pinned = live.pin();
        let j = pinned.j_measure(&mined.tree).expect("J of mined schema");
        let rho = pinned.loss(&mined.tree).expect("loss of mined schema");
        let stats = live.stats();
        println!(
            "epoch {:>2} (noise {noise:.2}): J = {j:.4} nats, rho = {rho:.4} \
             [shard tables: {} hits / {} misses]",
            stats.epoch, stats.shards.hits, stats.shards.misses
        );
    }

    let stats = live.stats();
    println!(
        "final: epoch {}, {} per-shard tables cached, merged-tier {} hits / {} misses",
        stats.epoch, stats.shards.entries, stats.merged.hits, stats.merged.misses
    );
}
