//! Ablation benchmark: computing the loss `ρ(R,S)` by message-passing over
//! the join tree (`count_acyclic_join`) vs by materialising the acyclic join
//! (`loss_materialized`), plus the cost of a full `Analyzer` report and
//! of the schema miner.
//!
//! The counting approach is the reason the library can evaluate losses whose
//! joins would have billions of tuples (e.g. Example 4.1 at large `N`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use ajd_core::discovery::{DiscoveryConfig, SchemaMiner};
use ajd_core::Analyzer;
use ajd_jointree::count::loss_materialized;
use ajd_jointree::{count_acyclic_join, JoinTree};
use ajd_random::generators::{bijection_relation, markov_chain_relation, random_relation};
use ajd_relation::AttrSet;

fn bag(ids: &[u32]) -> AttrSet {
    AttrSet::from_ids(ids.iter().copied())
}

fn bench_count_vs_materialise(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/loss_count_vs_materialise");
    group.sample_size(20);
    // Example 4.1 relation: the materialised join has N^2 tuples, the
    // counting approach touches only 2N projection tuples.
    for &n in &[256u32, 1024] {
        let r = bijection_relation(n);
        let tree = JoinTree::new(vec![bag(&[0]), bag(&[1])], vec![(0, 1)]).expect("cross schema");
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("tree_count", n), &r, |b, r| {
            b.iter(|| count_acyclic_join(r, &tree).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("materialised", n), &r, |b, r| {
            b.iter(|| loss_materialized(r, &tree.schema()).unwrap())
        });
    }
    group.finish();
}

fn bench_full_report(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/full_report");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(7);
    let r = random_relation(&mut rng, &[16, 16, 16, 16], 20_000).unwrap();
    let tree = JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap();
    group.throughput(Throughput::Elements(20_000));
    group.bench_function("loss_analysis_20k", |b| {
        b.iter(|| Analyzer::new(&r).analyze(&tree).unwrap())
    });
    group.finish();
}

fn bench_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/discovery");
    group.sample_size(10);
    let r = markov_chain_relation(&mut StdRng::seed_from_u64(3), 5, 8, 5_000, 0.2, false).unwrap();
    let miner = SchemaMiner::new(DiscoveryConfig {
        j_threshold: 0.05,
        ..DiscoveryConfig::default()
    });
    group.throughput(Throughput::Elements(5_000));
    group.bench_function("chow_liu", |b| b.iter(|| miner.chow_liu_tree(&r).unwrap()));
    group.bench_function("mine", |b| b.iter(|| miner.mine(&r).unwrap()));
    group.finish();
}

criterion_group!(
    benches,
    bench_count_vs_materialise,
    bench_full_report,
    bench_discovery
);
criterion_main!(benches);
