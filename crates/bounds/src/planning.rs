//! Planning helpers: inverting the paper's bounds.
//!
//! A practitioner using the bounds typically asks the inverse questions:
//!
//! * *"How many tuples do I need before `ε*(φ,N,δ)` drops below a target?"*
//!   — [`required_n_for_epsilon`];
//! * *"Given a measured J-measure, how many spurious tuples am I guaranteed
//!   to produce?"* — [`guaranteed_spurious_tuples`];
//! * *"Given a tolerance on the loss, what is the largest J-measure a mined
//!   schema may have?"* — [`j_budget_for_loss`].
//!
//! These are thin, well-tested numeric inversions of the formulas in
//! [`crate::thm51`] and [`crate::lower`].

use crate::thm51::{epsilon_star, Thm51Params};

/// The smallest relation size `N` for which the Theorem 5.1 deviation
/// `ε*(φ, N, δ)` is at most `target_eps` (nats), found by doubling +
/// bisection.  Returns `None` if no `N ≤ n_cap` achieves the target.
///
/// `ε*` is monotone decreasing in `N` up to the slowly-growing `log³ N`
/// factor, so a monotone search over the doubling grid is sound in the
/// regime of interest (`target_eps < ε*(1)`).
pub fn required_n_for_epsilon(
    d_a: u64,
    d_b: u64,
    d_c: u64,
    delta: f64,
    target_eps: f64,
    n_cap: u64,
) -> Option<u64> {
    assert!(target_eps > 0.0, "target epsilon must be positive");
    let eps_at = |n: u64| epsilon_star(&Thm51Params::new(d_a, d_b, d_c, n.max(1), delta));
    if eps_at(n_cap) > target_eps {
        return None;
    }
    // Exponential search for the first power-of-two N meeting the target.
    let mut hi = 1u64;
    while hi < n_cap && eps_at(hi) > target_eps {
        hi = (hi * 2).min(n_cap);
    }
    let mut lo = (hi / 2).max(1);
    // Bisection: eps_at(hi) <= target < eps_at(lo) (unless lo already works).
    if eps_at(lo) <= target_eps {
        return Some(lo);
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if eps_at(mid) <= target_eps {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// McDiarmid deviation bound for the plug-in (empirical) entropy of a
/// sample of `n` tuples, at confidence `1 − δ` (nats).
///
/// Replacing one of `n` sample tuples changes the plug-in entropy
/// `Ĥ = −Σ p̂ log p̂` by at most `c_n = 2·ln(n)/n`, so by McDiarmid's
/// bounded-differences inequality
/// `P(|Ĥ − E[Ĥ]| ≥ t) ≤ 2·exp(−2t²/(n·c_n²))`, which inverts to
///
/// ```text
/// ε(n, δ) = 2·ln(n)·√( ln(2/δ) / (2n) )
/// ```
///
/// This bounds the *random deviation* of the estimator around its mean; the
/// (always downward) plug-in bias `0 ≤ H − E[Ĥ] ≤ ln(1 + (k−1)/n)` for
/// support size `k` is reported separately by the estimation tier from the
/// observed sample support.  Compare [`required_n_for_epsilon`]: the
/// Theorem 5.1 inversion is the paper's rigorous (and much more
/// conservative) planner; this is the practical one that makes sampling pay
/// off at realistic relation sizes.
pub fn entropy_mcdiarmid_epsilon(n: u64, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    let nf = n.max(2) as f64;
    2.0 * nf.ln() * ((2.0 / delta).ln() / (2.0 * nf)).sqrt()
}

/// The smallest sample size `n` (on the doubling/bisection grid) for which
/// [`entropy_mcdiarmid_epsilon`]`(n, δ) ≤ target_eps`.  Returns `None` if no
/// `n ≤ n_cap` achieves the target — the estimation tier's signal to fall
/// back to the exact kernel.
///
/// `ε(n, δ)` is `ln(n)/√n` up to constants, monotone decreasing for
/// `n ≥ e² ≈ 8`, so the search starts at 8.
pub fn sample_size_for_entropy_epsilon(target_eps: f64, delta: f64, n_cap: u64) -> Option<u64> {
    assert!(target_eps > 0.0, "target epsilon must be positive");
    let eps_at = |n: u64| entropy_mcdiarmid_epsilon(n, delta);
    if n_cap < 8 || eps_at(n_cap) > target_eps {
        return None;
    }
    let mut hi = 8u64;
    while hi < n_cap && eps_at(hi) > target_eps {
        hi = (hi * 2).min(n_cap);
    }
    let mut lo = (hi / 2).max(8);
    if eps_at(lo) <= target_eps {
        return Some(lo);
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if eps_at(mid) <= target_eps {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// Lemma 4.1 restated in tuples: given a J-measure (nats) and a relation
/// size `N`, any acyclic schema with that J-measure produces at least
/// `⌈N·(e^J − 1)⌉` spurious tuples.
pub fn guaranteed_spurious_tuples(j_nats: f64, n: u64) -> u64 {
    assert!(j_nats >= -1e-9);
    let rho_min = j_nats.max(0.0).exp_m1();
    // Subtract a hair before rounding up so that exact integer products
    // (e.g. Example 4.1, where rho_min = N-1 exactly) are not bumped by
    // floating-point noise.
    ((n as f64 * rho_min - 1e-9).max(0.0)).ceil() as u64
}

/// The largest J-measure (nats) a schema may have while still *possibly*
/// keeping the loss at most `max_rho` (Lemma 4.1 inverted):
/// `J ≤ log(1 + max_rho)`.  A schema-mining run that wants at most
/// `max_rho` loss must reject any candidate whose J exceeds this budget
/// (passing the budget does not *guarantee* the loss, which is the point of
/// the paper's Section 5 upper bounds).
pub fn j_budget_for_loss(max_rho: f64) -> f64 {
    assert!(max_rho >= 0.0);
    max_rho.ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_n_meets_the_target_and_is_minimal_on_the_grid() {
        let (d_a, d_b, d_c, delta) = (32, 32, 2, 0.05);
        let target = 0.5;
        let n = required_n_for_epsilon(d_a, d_b, d_c, delta, target, u64::MAX >> 20).unwrap();
        let eps_at = |n: u64| epsilon_star(&Thm51Params::new(d_a, d_b, d_c, n, delta));
        assert!(eps_at(n) <= target);
        assert!(eps_at(n - 1) > target, "N should be minimal");
        // Tighter targets need more tuples.
        let n_tighter = required_n_for_epsilon(d_a, d_b, d_c, delta, 0.1, u64::MAX >> 20).unwrap();
        assert!(n_tighter > n);
    }

    #[test]
    fn required_n_respects_the_cap() {
        assert!(required_n_for_epsilon(64, 64, 4, 0.05, 0.01, 10_000).is_none());
        assert!(required_n_for_epsilon(4, 4, 1, 0.05, 5.0, 1 << 40).is_some());
    }

    #[test]
    fn guaranteed_spurious_tuples_matches_example_4_1() {
        // J = ln N  =>  at least N*(N-1) spurious tuples.
        for n in [4u64, 16, 100] {
            let j = (n as f64).ln();
            assert_eq!(guaranteed_spurious_tuples(j, n), n * (n - 1));
        }
        assert_eq!(guaranteed_spurious_tuples(0.0, 1000), 0);
    }

    #[test]
    fn j_budget_is_the_inverse_of_the_lower_bound() {
        for rho in [0.0f64, 0.5, 3.0, 100.0] {
            let budget = j_budget_for_loss(rho);
            assert!((budget.exp_m1() - rho).abs() < 1e-9 * (1.0 + rho));
        }
    }

    #[test]
    #[should_panic]
    fn zero_target_epsilon_is_rejected() {
        required_n_for_epsilon(8, 8, 1, 0.1, 0.0, 1 << 30);
    }

    #[test]
    fn mcdiarmid_epsilon_decreases_in_n_and_increases_in_confidence() {
        let mut prev = f64::INFINITY;
        for n in [8u64, 64, 1 << 10, 1 << 16, 1 << 20] {
            let eps = entropy_mcdiarmid_epsilon(n, 0.05);
            assert!(eps < prev, "eps must shrink with n");
            prev = eps;
        }
        assert!(entropy_mcdiarmid_epsilon(1 << 16, 0.01) > entropy_mcdiarmid_epsilon(1 << 16, 0.2));
    }

    #[test]
    fn sample_size_planner_meets_its_target_and_respects_the_cap() {
        let (eps, delta) = (0.1, 0.05);
        let n = sample_size_for_entropy_epsilon(eps, delta, 1 << 30).unwrap();
        assert!(entropy_mcdiarmid_epsilon(n, delta) <= eps);
        // Practical regime: a 0.1-nat target needs ~1e5 samples, far fewer
        // than the Theorem 5.1 inversion would demand.
        assert!((1 << 14..1 << 20).contains(&n), "n = {n}");
        // Unreachable targets report None instead of planning n > cap.
        assert!(sample_size_for_entropy_epsilon(eps, delta, 1 << 10).is_none());
        // Tighter targets need more samples.
        let n_tight = sample_size_for_entropy_epsilon(0.01, delta, 1 << 40).unwrap();
        assert!(n_tight > n);
    }
}
