//! [`LossEngine`]: one API over the exact and estimated analysis paths.
//!
//! Before this trait, code that wanted "an entropy / J / loss answerer"
//! had to commit to the exact [`Analyzer`] — and anything built on top
//! (schema mining, batch scoring, the server) would have had to fork to
//! support the estimation tier.  `LossEngine` is the common vocabulary:
//! every measure returns an [`Estimate`] (ε = 0 for the exact path), so
//! [`crate::SchemaMiner::mine_engine`] and other consumers dispatch through
//! one API and work unchanged over:
//!
//! * [`Analyzer`] — exact answers, [`BoundKind::Exact`](crate::BoundKind);
//! * [`BatchAnalyzer`] — exact answers with a parallel
//!   [`LossEngine::j_measures_estimate`] override;
//! * [`EstimatedAnalyzer`] — sampled answers carrying their (ε, δ, seed,
//!   sample size).
//!
//! Existing `Analyzer` callers are untouched: the trait adds `*_estimate`
//! methods alongside the bare-`f64` inherent ones rather than replacing
//! them.

use crate::analysis::Analyzer;
use crate::batch::BatchAnalyzer;
use crate::estimate::{Estimate, EstimatedAnalyzer};
use ajd_info::{conditional_mutual_information, entropy, j_measure, mutual_information};
use ajd_jointree::{loss_acyclic, JoinTree};
use ajd_relation::{AttrSet, GroupKernel, Result};

/// The unified engine API over exact and estimated loss analysis.
///
/// All measures are in nats and return [`Estimate`]s; exact
/// implementations report `ε = δ = 0`.  The `relation_*` accessors expose
/// the schema-level facts consumers (e.g. the schema miner) need without
/// binding to a storage layout.
pub trait LossEngine {
    /// The attribute set of the underlying relation.
    fn relation_attrs(&self) -> AttrSet;

    /// Number of tuples of the underlying relation.
    fn relation_rows(&self) -> u64;

    /// Shannon entropy `H(attrs)` of the empirical distribution.
    fn entropy_estimate(&self, attrs: &AttrSet) -> Result<Estimate<f64>>;

    /// Mutual information `I(A;B)`.
    fn mutual_information_estimate(&self, a: &AttrSet, b: &AttrSet) -> Result<Estimate<f64>>;

    /// Conditional mutual information `I(A;B|C)`.
    fn cmi_estimate(&self, a: &AttrSet, b: &AttrSet, c: &AttrSet) -> Result<Estimate<f64>>;

    /// The J-measure `J(T)` of a join tree.
    fn j_measure_estimate(&self, tree: &JoinTree) -> Result<Estimate<f64>>;

    /// The loss `ρ(R, T)` of a join tree.
    fn loss_estimate(&self, tree: &JoinTree) -> Result<Estimate<f64>>;

    /// J-measures of several candidate trees.  The default answers
    /// sequentially; engines with a parallel scorer (e.g.
    /// [`BatchAnalyzer`]) override it.
    fn j_measures_estimate(&self, trees: &[JoinTree]) -> Vec<Result<Estimate<f64>>> {
        trees.iter().map(|t| self.j_measure_estimate(t)).collect()
    }

    /// `true` if the underlying relation holds no tuples.
    fn relation_is_empty(&self) -> bool {
        self.relation_rows() == 0
    }
}

impl<S: GroupKernel> LossEngine for Analyzer<S> {
    fn relation_attrs(&self) -> AttrSet {
        self.source().attrs()
    }

    fn relation_rows(&self) -> u64 {
        self.source().num_rows() as u64
    }

    fn entropy_estimate(&self, attrs: &AttrSet) -> Result<Estimate<f64>> {
        Ok(Estimate::exact(self.entropy(attrs)?, self.relation_rows()))
    }

    fn mutual_information_estimate(&self, a: &AttrSet, b: &AttrSet) -> Result<Estimate<f64>> {
        Ok(Estimate::exact(
            self.mutual_information(a, b)?,
            self.relation_rows(),
        ))
    }

    fn cmi_estimate(&self, a: &AttrSet, b: &AttrSet, c: &AttrSet) -> Result<Estimate<f64>> {
        Ok(Estimate::exact(self.cmi(a, b, c)?, self.relation_rows()))
    }

    fn j_measure_estimate(&self, tree: &JoinTree) -> Result<Estimate<f64>> {
        Ok(Estimate::exact(self.j_measure(tree)?, self.relation_rows()))
    }

    fn loss_estimate(&self, tree: &JoinTree) -> Result<Estimate<f64>> {
        Ok(Estimate::exact(self.loss(tree)?, self.relation_rows()))
    }
}

impl<S: GroupKernel> LossEngine for BatchAnalyzer<S> {
    fn relation_attrs(&self) -> AttrSet {
        self.source().attrs()
    }

    fn relation_rows(&self) -> u64 {
        self.source().num_rows() as u64
    }

    fn entropy_estimate(&self, attrs: &AttrSet) -> Result<Estimate<f64>> {
        Ok(Estimate::exact(
            entropy(self.context(), attrs)?,
            self.relation_rows(),
        ))
    }

    fn mutual_information_estimate(&self, a: &AttrSet, b: &AttrSet) -> Result<Estimate<f64>> {
        Ok(Estimate::exact(
            mutual_information(self.context(), a, b)?,
            self.relation_rows(),
        ))
    }

    fn cmi_estimate(&self, a: &AttrSet, b: &AttrSet, c: &AttrSet) -> Result<Estimate<f64>> {
        Ok(Estimate::exact(
            conditional_mutual_information(self.context(), a, b, c)?,
            self.relation_rows(),
        ))
    }

    fn j_measure_estimate(&self, tree: &JoinTree) -> Result<Estimate<f64>> {
        Ok(Estimate::exact(
            j_measure(self.context(), tree)?,
            self.relation_rows(),
        ))
    }

    fn loss_estimate(&self, tree: &JoinTree) -> Result<Estimate<f64>> {
        Ok(Estimate::exact(
            loss_acyclic(self.context(), tree)?,
            self.relation_rows(),
        ))
    }

    /// Scores the candidates through the batch's parallel work-stealing
    /// scorer instead of one at a time.
    fn j_measures_estimate(&self, trees: &[JoinTree]) -> Vec<Result<Estimate<f64>>> {
        let rows = self.relation_rows();
        self.j_measures(trees)
            .into_iter()
            .map(|r| r.map(|j| Estimate::exact(j, rows)))
            .collect()
    }
}

impl<S: GroupKernel> LossEngine for EstimatedAnalyzer<S> {
    fn relation_attrs(&self) -> AttrSet {
        self.source().attrs()
    }

    fn relation_rows(&self) -> u64 {
        self.total_rows()
    }

    fn entropy_estimate(&self, attrs: &AttrSet) -> Result<Estimate<f64>> {
        self.entropy(attrs)
    }

    fn mutual_information_estimate(&self, a: &AttrSet, b: &AttrSet) -> Result<Estimate<f64>> {
        self.mutual_information(a, b)
    }

    fn cmi_estimate(&self, a: &AttrSet, b: &AttrSet, c: &AttrSet) -> Result<Estimate<f64>> {
        self.cmi(a, b, c)
    }

    fn j_measure_estimate(&self, tree: &JoinTree) -> Result<Estimate<f64>> {
        self.j_measure(tree)
    }

    fn loss_estimate(&self, tree: &JoinTree) -> Result<Estimate<f64>> {
        self.loss(tree)
    }
}
