//! Property and statistical tests of the estimation tier.
//!
//! Three contracts, in order of strictness:
//!
//! 1. **Fallback bit-identity**: when the planned sample would cover the
//!    relation, [`EstimatedAnalyzer`] must answer bit-identically to the
//!    exact [`Analyzer`], with ε = 0 and no seed.
//! 2. **Determinism**: a fixed `(relation, seed, ε)` yields bit-identical
//!    estimates across thread budgets, across flat vs sharded storage, and
//!    across repeated construction.
//! 3. **Calibration**: on random-model instances the empirical estimation
//!    error stays within the planned ε at (well above) the claimed
//!    confidence, over a seeded, fully deterministic trial loop.

use ajd_core::{Analyzer, EstimateConfig, EstimatedAnalyzer, LossEngine, SchemaMiner};
use ajd_jointree::JoinTree;
use ajd_random::generators::random_relation;
use ajd_relation::{AttrId, AttrSet, Relation, ThreadBudget, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn relation_strategy(
    arity: usize,
    domain: Value,
    max_rows: usize,
) -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(0..domain, arity), 1..max_rows).prop_map(
        move |rows| {
            let schema: Vec<AttrId> = (0..arity).map(AttrId::from).collect();
            Relation::from_rows(schema, &rows).expect("generated rows have the right arity")
        },
    )
}

fn bag(ids: &[u32]) -> AttrSet {
    AttrSet::from_ids(ids.iter().copied())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On small relations every planned sample covers the relation, so the
    /// estimator must take the exact path and agree bit-for-bit with
    /// `Analyzer` on every measure, reporting ε = 0 and no seed.
    #[test]
    fn fallback_is_bit_identical_to_the_exact_analyzer(r in relation_strategy(3, 4, 60)) {
        let exact = Analyzer::new(&r);
        let est = EstimatedAnalyzer::new(&r, EstimateConfig::default()).unwrap();
        prop_assert!(est.is_fallback());
        prop_assert_eq!(est.sample_rows(), r.len() as u64);

        let tree = JoinTree::new(vec![bag(&[0, 2]), bag(&[1, 2])], vec![(0, 1)]).unwrap();
        let cases = [
            (est.entropy(&bag(&[0, 1])).unwrap(), exact.entropy(&bag(&[0, 1])).unwrap()),
            (
                est.mutual_information(&bag(&[0]), &bag(&[1])).unwrap(),
                exact.mutual_information(&bag(&[0]), &bag(&[1])).unwrap(),
            ),
            (
                est.cmi(&bag(&[0]), &bag(&[1]), &bag(&[2])).unwrap(),
                exact.cmi(&bag(&[0]), &bag(&[1]), &bag(&[2])).unwrap(),
            ),
            (est.j_measure(&tree).unwrap(), exact.j_measure(&tree).unwrap()),
            (est.loss(&tree).unwrap(), exact.loss(&tree).unwrap()),
        ];
        for (e, x) in cases {
            prop_assert_eq!(e.value.to_bits(), x.to_bits());
            prop_assert!(e.is_exact());
            prop_assert_eq!(e.epsilon.to_bits(), 0f64.to_bits());
            prop_assert_eq!(e.seed, None);
            prop_assert_eq!(e.total_rows, r.len() as u64);
        }
    }

    /// The `LossEngine` view of the estimator and of the exact analyzers
    /// agree on the fallback path — so `mine_engine` over either tier
    /// reproduces `mine` exactly on small inputs.
    #[test]
    fn mine_engine_agrees_across_tiers_on_fallback(r in relation_strategy(3, 3, 40)) {
        let miner = SchemaMiner::default();
        let exact = miner.mine(&r).unwrap();
        let est = EstimatedAnalyzer::new(&r, EstimateConfig::default()).unwrap();
        let mined = miner.mine_engine(&est).unwrap();
        prop_assert_eq!(exact.tree.bags(), mined.tree.bags());
        prop_assert_eq!(exact.j_measure.to_bits(), mined.j_measure.to_bits());
        prop_assert_eq!(exact.rho_lower_bound.to_bits(), mined.rho_lower_bound.to_bits());
    }
}

/// A fixed `(relation, seed, ε)` must produce bit-identical estimates no
/// matter the thread budget or the storage layout (flat vs sharded, any
/// shard count) — the gathered sample is defined by global row order, not
/// by layout.
#[test]
fn sampled_estimates_are_deterministic_across_budgets_and_shardings() {
    let mut rng = StdRng::seed_from_u64(0xE57);
    let r = random_relation(&mut rng, &[64, 64, 8], 6_000).unwrap();
    let cfg = EstimateConfig::default().with_epsilon(0.5).with_seed(9);
    let tree = JoinTree::new(vec![bag(&[0, 2]), bag(&[1, 2])], vec![(0, 1)]).unwrap();

    let fingerprint = |est: &dyn LossEngine| -> Vec<u64> {
        let h = est.entropy_estimate(&bag(&[0, 1])).unwrap();
        let c = est
            .cmi_estimate(&bag(&[0]), &bag(&[1]), &bag(&[2]))
            .unwrap();
        let j = est.j_measure_estimate(&tree).unwrap();
        let l = est.loss_estimate(&tree).unwrap();
        let mut out = Vec::new();
        for e in [h, c, j, l] {
            out.extend([
                e.value.to_bits(),
                e.epsilon.to_bits(),
                e.delta.to_bits(),
                e.seed.unwrap(),
                e.sample_rows,
                e.total_rows,
            ]);
        }
        out
    };

    let flat_serial =
        EstimatedAnalyzer::with_thread_budget(&r, cfg, ThreadBudget::serial()).unwrap();
    assert!(!flat_serial.is_fallback(), "ε = 0.5 must sample 6k rows");
    let reference = fingerprint(&flat_serial);

    let flat_parallel =
        EstimatedAnalyzer::with_thread_budget(&r, cfg, ThreadBudget::new(4)).unwrap();
    assert_eq!(
        reference,
        fingerprint(&flat_parallel),
        "thread budget leaked"
    );

    for shards in [1usize, 3, 7] {
        let sharded = r.clone().into_shards(shards).unwrap();
        let est =
            EstimatedAnalyzer::with_thread_budget(&sharded, cfg, ThreadBudget::new(2)).unwrap();
        assert_eq!(
            reference,
            fingerprint(&est),
            "sharding into {shards} changed a sampled estimate"
        );
    }

    // Same construction twice: bit-identical (no ambient entropy anywhere).
    let again = EstimatedAnalyzer::with_thread_budget(&r, cfg, ThreadBudget::serial()).unwrap();
    assert_eq!(reference, fingerprint(&again));

    // A different seed draws a different sample (the seed is load-bearing).
    let other =
        EstimatedAnalyzer::with_thread_budget(&r, cfg.with_seed(10), ThreadBudget::serial())
            .unwrap();
    assert_ne!(reference, fingerprint(&other));
}

/// Calibration on random-model instances: over a deterministic loop of
/// seeded trials, the observed |estimate − exact| exceeds the reported ε
/// far less often than the claimed δ allows.
#[test]
fn empirical_error_stays_within_planned_epsilon() {
    let trials = 30u64;
    let delta = 0.1;
    let mut entropy_violations = 0u32;
    let mut cmi_violations = 0u32;
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(40_000 + t);
        let r = random_relation(&mut rng, &[128, 128], 6_000).unwrap();
        let exact = Analyzer::new(&r);
        let cfg = EstimateConfig::default()
            .with_epsilon(0.5)
            .with_delta(delta)
            .with_seed(t);
        let est = EstimatedAnalyzer::new(&r, cfg).unwrap();
        assert!(!est.is_fallback());

        let h = est.entropy(&bag(&[0])).unwrap();
        if (h.value - exact.entropy(&bag(&[0])).unwrap()).abs() > h.epsilon {
            entropy_violations += 1;
        }
        let c = est.cmi(&bag(&[0]), &bag(&[1]), &AttrSet::empty()).unwrap();
        if (c.value
            - exact
                .cmi(&bag(&[0]), &bag(&[1]), &AttrSet::empty())
                .unwrap())
        .abs()
            > c.epsilon
        {
            cmi_violations += 1;
        }
    }
    // δ = 0.1 permits ~3 of 30; the McDiarmid + bias allowance is
    // conservative enough that these seeds should see none at all.
    let budget = (trials as f64 * delta).ceil() as u32;
    assert!(
        entropy_violations <= budget,
        "{entropy_violations}/{trials} entropy estimates strayed past their ε"
    );
    assert!(
        cmi_violations <= budget,
        "{cmi_violations}/{trials} CMI estimates strayed past their ε"
    );
}
