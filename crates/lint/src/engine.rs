//! The lint driver: file walking, waiver resolution, report assembly.
//!
//! ## Waivers
//!
//! A finding is suppressed only by an inline annotation:
//!
//! ```text
//! // ajd: allow(rule-id, "why this occurrence is correct")
//! ```
//!
//! placed either at the end of the offending line or on a comment-only
//! line directly above it (several waiver lines may stack).  A file-wide
//! exception uses `allow-file` and is intended for files whose whole idiom
//! triggers a rule (none currently).  Waivers are themselves linted: a
//! waiver that does not parse, names an unknown rule, or omits the reason
//! is a [`MALFORMED_WAIVER`] finding; a waiver that suppresses nothing is
//! a [`STALE_WAIVER`] finding.  The tree therefore carries no silent and
//! no dead exceptions.

use crate::lexer::scrub;
use crate::rules::{check_file, FileModel, Finding, MALFORMED_WAIVER, RULES, STALE_WAIVER};
use std::path::{Path, PathBuf};

/// A parsed `ajd: allow(...)` annotation.
#[derive(Debug, Clone)]
struct Waiver {
    /// 1-based line the comment sits on.
    line: usize,
    rule: String,
    reason: String,
    file_level: bool,
    used: bool,
}

/// A suppressed finding, kept in the report so `--json` shows the full
/// audit trail (what was waived, where, and why).
#[derive(Debug, Clone)]
pub struct WaivedFinding {
    /// The finding that the waiver matched.
    pub finding: Finding,
    /// The written justification from the waiver.
    pub reason: String,
}

/// The result of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Unwaived violations — the pass fails (under `--deny`) iff nonempty.
    pub findings: Vec<Finding>,
    /// Violations suppressed by a waiver, with their reasons.
    pub waived: Vec<WaivedFinding>,
    /// Number of files scanned.
    pub files: usize,
}

impl Report {
    /// `true` when there are no unwaived findings.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{} [{}] {}\n",
                f.path, f.line, f.rule, f.message
            ));
        }
        out.push_str(&format!(
            "ajd-lint: {} file(s), {} finding(s), {} waived\n",
            self.files,
            self.findings.len(),
            self.waived.len()
        ));
        out
    }

    /// Renders the machine-readable report (stable field order).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"v\":1,\"files\":");
        out.push_str(&self.files.to_string());
        out.push_str(",\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{}}}",
                json_str(f.rule),
                json_str(&f.path),
                f.line,
                json_str(&f.message)
            ));
        }
        out.push_str("],\"waived\":[");
        for (i, w) in self.waived.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"path\":{},\"line\":{},\"reason\":{}}}",
                json_str(w.finding.rule),
                json_str(&w.finding.path),
                w.finding.line,
                json_str(&w.reason)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (the report contains no exotic content).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lints one in-memory source file (the fixture-test entry point).
pub fn lint_source(path: &str, source: &str) -> Report {
    lint_files(&[(path.to_owned(), source.to_owned())])
}

/// Lints a set of `(workspace-relative path, source)` pairs.
pub fn lint_files(files: &[(String, String)]) -> Report {
    let mut report = Report {
        files: files.len(),
        ..Report::default()
    };
    for (path, source) in files {
        lint_one(path, source, &mut report);
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    report
}

fn known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Parses the waivers of a scrubbed file and reports malformed ones.
fn parse_waivers(file: &FileModel, report: &mut Report) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        for comment in &line.comments {
            let trimmed = comment.trim();
            let Some(rest) = trimmed.strip_prefix("ajd:") else {
                continue;
            };
            let rest = rest.trim_start();
            let (file_level, body) = if let Some(b) = rest.strip_prefix("allow-file(") {
                (true, b)
            } else if let Some(b) = rest.strip_prefix("allow(") {
                (false, b)
            } else {
                report.findings.push(Finding {
                    rule: MALFORMED_WAIVER,
                    path: file.path.clone(),
                    line: idx + 1,
                    message: format!(
                        "`ajd:` comment is not of the form `ajd: allow(rule-id, \
                         \"reason\")`: `{trimmed}`"
                    ),
                });
                continue;
            };
            let Some(body) = body.trim_end().strip_suffix(')') else {
                report.findings.push(Finding {
                    rule: MALFORMED_WAIVER,
                    path: file.path.clone(),
                    line: idx + 1,
                    message: "waiver is missing its closing `)`".to_owned(),
                });
                continue;
            };
            let (rule, reason) = match body.split_once(',') {
                Some((r, rest)) => (r.trim(), rest.trim()),
                None => (body.trim(), ""),
            };
            // Comment bodies are preserved verbatim by the lexer, so the
            // reason is readable here: a non-empty double-quoted string.
            let reason_text = reason
                .strip_prefix('"')
                .and_then(|r| r.strip_suffix('"'))
                .filter(|r| !r.trim().is_empty());
            if !known_rule(rule) {
                report.findings.push(Finding {
                    rule: MALFORMED_WAIVER,
                    path: file.path.clone(),
                    line: idx + 1,
                    message: format!("waiver names unknown rule `{rule}`"),
                });
                continue;
            }
            let Some(reason_text) = reason_text else {
                report.findings.push(Finding {
                    rule: MALFORMED_WAIVER,
                    path: file.path.clone(),
                    line: idx + 1,
                    message: format!(
                        "waiver for `{rule}` carries no quoted reason; every exception \
                         must be justified in-tree"
                    ),
                });
                continue;
            };
            waivers.push(Waiver {
                line: idx + 1,
                rule: rule.to_owned(),
                reason: reason_text.to_owned(),
                file_level,
                used: false,
            });
        }
    }
    waivers
}

fn lint_one(path: &str, source: &str, report: &mut Report) {
    let file = FileModel {
        path: path.to_owned(),
        lines: scrub(source),
    };
    let mut waivers = parse_waivers(&file, report);
    let findings = check_file(&file);

    for f in findings {
        let idx = waiver_for(&file, &mut waivers, &f);
        match idx {
            Some(i) => {
                waivers[i].used = true;
                report.waived.push(WaivedFinding {
                    reason: waivers[i].reason.clone(),
                    finding: f,
                });
            }
            None => report.findings.push(f),
        }
    }

    for w in &waivers {
        if !w.used {
            report.findings.push(Finding {
                rule: STALE_WAIVER,
                path: file.path.clone(),
                line: w.line,
                message: format!(
                    "waiver for `{}` suppresses nothing; the violation it covered is \
                     gone — delete the waiver",
                    w.rule
                ),
            });
        }
    }
}

/// Finds a waiver matching finding `f`: file-level, same-line, or on the
/// contiguous run of comment-only lines directly above.
fn waiver_for(file: &FileModel, waivers: &mut [Waiver], f: &Finding) -> Option<usize> {
    // Meta findings are never waivable — fix the waiver instead.
    if f.rule == MALFORMED_WAIVER || f.rule == STALE_WAIVER {
        return None;
    }
    if let Some(i) = waivers
        .iter()
        .position(|w| w.file_level && w.rule == f.rule)
    {
        return Some(i);
    }
    if let Some(i) = waivers
        .iter()
        .position(|w| !w.file_level && w.line == f.line && w.rule == f.rule)
    {
        return Some(i);
    }
    // Walk up over comment-only lines.
    let mut line = f.line;
    while line > 1 {
        line -= 1;
        let model = &file.lines[line - 1];
        let comment_only = model.scrubbed.trim().is_empty() && !model.comments.is_empty();
        if !comment_only {
            break;
        }
        if let Some(i) = waivers
            .iter()
            .position(|w| !w.file_level && w.line == line && w.rule == f.rule)
        {
            return Some(i);
        }
    }
    None
}

// ---------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------

/// Directories (relative to the workspace root) the lint walks.  `shims/`
/// is deliberately excluded: those crates emulate external dependencies
/// and are not subject to workspace law.
const WALK_ROOTS: &[&str] = &["src", "tests", "examples", "crates"];

/// Recursively collects the workspace's `.rs` files in sorted order.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name == "shims" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every workspace `.rs` file under `root` (`src/`, `tests/`,
/// `examples/`, `crates/`; shims and build artifacts excluded).
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut paths = Vec::new();
    for sub in WALK_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs(&dir, &mut paths)?;
        }
    }
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let source = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push((rel, source));
    }
    Ok(lint_files(&files))
}
