//! Sharded relations: shard-local grouping with a deterministic
//! shard-order merge.
//!
//! The chunked parallel kernel (PR 4) proved the load-bearing fact of this
//! module: disjoint row spans of a relation can be grouped independently and
//! their group tables merged **in span order** without changing a single
//! bit of the result — first-appearance numbering, counts, codes and
//! per-row ids all come out identical to the serial scan.  A
//! [`ShardedRelation`] lifts that span boundary from a transient scheduling
//! detail into a first-class storage layout:
//!
//! * each [`RelationShard`] is a fully self-contained columnar
//!   [`Relation`] — its own per-column dictionaries, its own code columns —
//!   so a shard can be built, stored, shipped or dropped without touching
//!   any other shard (the memory model for inputs larger than one machine's
//!   RAM or one NUMA node's locality domain);
//! * the [`ShardedRelation`] owns only the *global* per-attribute
//!   dictionaries (built in shard order, so they equal the flat relation's
//!   first-appearance dictionaries) plus one local → global code remap per
//!   shard column — a few words per distinct value, never per row;
//! * grouping runs shard-local (each shard through the ordinary
//!   [`Relation::group_ids_with`] kernel, fanned out over the
//!   [`ThreadBudget`]) and the per-shard group tables are merged in shard
//!   order through the exact same `merge_spans` discipline the chunked
//!   kernel uses — so [`ShardedRelation::group_ids`] /
//!   [`ShardedRelation::group_counts`] are **bit-identical** to the flat
//!   [`Relation`] at any shard count and any thread budget (property-tested
//!   in `tests/prop_sharded.rs`).
//!
//! Because the whole measure stack is generic over
//! [`GroupSource`], a sharded relation drops into `ajd-info`,
//! `ajd-jointree` and `ajd_core::Analyzer` unchanged, and
//! [`GroupKernel`] lets an `AnalysisContext` memoize over it exactly as
//! over a flat relation.
//!
//! [`ShardedRelation::append_shard`] accepts a freshly ingested batch as a
//! new shard without touching existing ones — the first step toward the
//! roadmap's incremental maintenance (keep per-shard group tables, re-merge
//! instead of regrouping).

use crate::attr::{AttrId, AttrSet};
use crate::context::{GroupKernel, GroupSource};
use crate::error::{RelationError, Result};
use crate::hash::FxHashMap;
use crate::parallel::{chunk_bounds, ThreadBudget, MAX_CHUNK_WORKERS};
use crate::relation::{bit_width, merge_spans, GroupCounts, GroupIds, Relation, SpanGroups, Value};
use ajd_sync::atomic::{AtomicUsize, Ordering};
use ajd_sync::OnceSlot;
use std::fmt;
use std::sync::Arc;

/// A global (cross-shard) attribute dictionary: raw value → dense code, in
/// shard-order first appearance — exactly the code assignment the flat
/// relation's column dictionary would make on the concatenated rows.
#[derive(Debug, Clone, Default)]
struct GlobalDict {
    /// `code → value`, in first-appearance order across shards.
    values: Vec<Value>,
    /// `value → code`.
    index: FxHashMap<Value, u32>,
}

impl GlobalDict {
    /// Interns `v`, returning its dense global code.
    fn intern(&mut self, v: Value) -> Result<u32> {
        if let Some(&c) = self.index.get(&v) {
            return Ok(c);
        }
        let code = u32::try_from(self.values.len()).map_err(|_| {
            RelationError::CountOverflow("global shard dictionary exceeds the u32 code space")
        })?;
        self.values.push(v);
        self.index.insert(v, code);
        Ok(code)
    }
}

/// One shard of a [`ShardedRelation`]: a self-contained columnar span with
/// its own dictionaries, plus its global row offset.
///
/// A shard is just a [`Relation`] — every kernel, constructor and invariant
/// of the flat store applies verbatim within the shard.  Shards never
/// reference each other; only the owning [`ShardedRelation`] knows how
/// their local dictionary codes map into the global code space.
#[derive(Debug, Clone)]
pub struct RelationShard {
    /// The shard's rows, dictionary-encoded against the shard's own
    /// (local, first-appearance) dictionaries.
    local: Relation,
    /// Global index of this shard's first row (shards concatenate in order).
    row_offset: usize,
}

impl RelationShard {
    /// The shard's rows as a self-contained flat relation.
    pub fn relation(&self) -> &Relation {
        &self.local
    }

    /// Number of rows in this shard.
    pub fn len(&self) -> usize {
        self.local.len()
    }

    /// `true` if the shard holds no rows.
    pub fn is_empty(&self) -> bool {
        self.local.is_empty()
    }

    /// Global index of this shard's first row.
    pub fn row_offset(&self) -> usize {
        self.row_offset
    }
}

/// An ordered list of [`RelationShard`]s behaving, for every measure in the
/// workspace, exactly like the flat [`Relation`] of their concatenated rows.
///
/// ```
/// use ajd_relation::{AttrSet, GroupSource, Relation, AttrId};
///
/// let flat = Relation::from_rows(vec![AttrId(0), AttrId(1)], &[
///     &[10, 0][..], &[20, 0][..], &[10, 1][..], &[30, 1][..],
/// ]).unwrap();
/// let sharded = flat.clone().into_shards(3).unwrap();
/// assert_eq!(sharded.num_shards(), 3);
///
/// // Grouping is bit-identical to the flat relation…
/// let y = AttrSet::singleton(AttrId(0));
/// let a = flat.group_ids(&y).unwrap();
/// let b = sharded.group_ids(&y).unwrap();
/// assert_eq!(a.row_ids(), b.row_ids());
/// assert_eq!(a.counts(), b.counts());
///
/// // …and the round trip reproduces the flat store, dictionaries included.
/// let back = sharded.collect().unwrap();
/// assert_eq!(back.column_codes(AttrId(0)).unwrap(),
///            flat.column_codes(AttrId(0)).unwrap());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ShardedRelation {
    schema: Vec<AttrId>,
    shards: Vec<RelationShard>,
    /// Global per-attribute dictionaries, indexed by schema position.
    dicts: Vec<GlobalDict>,
    /// `remaps[s][col][local_code]` = global code, per shard and column.
    remaps: Vec<Vec<Vec<u32>>>,
    rows: usize,
}

impl ShardedRelation {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Creates an empty sharded relation over the given schema (column
    /// order is preserved as given).
    pub fn new(schema: Vec<AttrId>) -> Result<Self> {
        let mut seen = AttrSet::empty();
        for &a in &schema {
            if !seen.insert(a) {
                return Err(RelationError::DuplicateAttribute(a));
            }
        }
        Ok(ShardedRelation {
            dicts: vec![GlobalDict::default(); schema.len()],
            schema,
            shards: Vec::new(),
            remaps: Vec::new(),
            rows: 0,
        })
    }

    /// Builds a sharded relation from explicit shards (all must share the
    /// schema, in the same column order).
    pub fn from_shards<I: IntoIterator<Item = Relation>>(
        schema: Vec<AttrId>,
        shards: I,
    ) -> Result<Self> {
        let mut out = Self::new(schema)?;
        for shard in shards {
            out.append_shard(shard)?;
        }
        Ok(out)
    }

    /// Appends a batch of rows as a **new shard**, leaving every existing
    /// shard untouched: only the global dictionaries grow (by the shard's
    /// previously unseen values) and one local → global remap is recorded.
    ///
    /// This is the ingestion path for incremental maintenance: appends
    /// never rewrite shard-local state, so per-shard group tables stay
    /// valid and only the shard-order merge needs redoing.
    ///
    /// The shard's schema must equal this relation's schema, including
    /// column order (reorder with [`Relation::reorder_columns`] first if
    /// needed).
    pub fn append_shard(&mut self, shard: Relation) -> Result<()> {
        if shard.schema() != self.schema.as_slice() {
            return Err(RelationError::SchemaMismatch {
                detail: format!(
                    "shard schema {:?} does not match the sharded relation's {:?}",
                    shard.schema(),
                    self.schema
                ),
            });
        }
        // Extend the global dictionaries in the shard's local-dictionary
        // order.  Local dictionaries are first-appearance ordered, so new
        // values enter the global dictionary exactly in the order of their
        // first appearance in the concatenated rows — the invariant the
        // bit-identity of the merge rests on.
        let mut remap: Vec<Vec<u32>> = Vec::with_capacity(self.schema.len());
        for (pos, &attr) in self.schema.iter().enumerate() {
            let locals = shard
                .domain(attr)
                .expect("schema equality guarantees the attribute");
            let dict = &mut self.dicts[pos];
            let mut map = Vec::with_capacity(locals.len());
            for &v in locals {
                map.push(dict.intern(v)?);
            }
            remap.push(map);
        }
        let row_offset = self.rows;
        self.rows += shard.len();
        self.remaps.push(remap);
        self.shards.push(RelationShard {
            local: shard,
            row_offset,
        });
        Ok(())
    }

    /// Concatenates all shards back into one flat [`Relation`].
    ///
    /// Rows are pushed in shard order, so the result's dictionaries, code
    /// columns and row order are exactly those of the flat relation the
    /// shards were split from (or would have been built as).
    pub fn collect(&self) -> Result<Relation> {
        let mut out = Relation::with_capacity(self.schema.clone(), self.rows)?;
        for shard in &self.shards {
            for row in shard.local.iter_rows() {
                out.push_row(row)?;
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The column order of this relation.
    #[inline]
    pub fn schema(&self) -> &[AttrId] {
        &self.schema
    }

    /// The attribute set of this relation (schema as a set).
    pub fn attrs(&self) -> AttrSet {
        AttrSet::from_slice(&self.schema)
    }

    /// Number of attributes per tuple.
    #[inline]
    pub fn arity(&self) -> usize {
        self.schema.len()
    }

    /// Total number of tuples across all shards.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// `true` if no shard holds any tuple.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of shards (empty shards included).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in shard (concatenation) order.
    pub fn shards(&self) -> &[RelationShard] {
        &self.shards
    }

    /// One shard by index.
    pub fn shard(&self, s: usize) -> &RelationShard {
        &self.shards[s]
    }

    /// Position of an attribute in this relation's column order.
    pub fn attr_pos(&self, attr: AttrId) -> Result<usize> {
        self.schema
            .iter()
            .position(|&a| a == attr)
            .ok_or(RelationError::UnknownAttribute(attr))
    }

    /// Positions (column indices) of each attribute of `attrs`, in the
    /// order of `attrs` (ascending attribute id).
    pub fn attr_positions(&self, attrs: &AttrSet) -> Result<Vec<usize>> {
        attrs.iter().map(|a| self.attr_pos(a)).collect()
    }

    /// The global active domain of an attribute: the distinct values it
    /// takes across all shards, in shard-order first appearance — the same
    /// list the flat relation's dictionary would hold.  O(1), no scan.
    pub fn domain(&self, attr: AttrId) -> Result<&[Value]> {
        let pos = self.attr_pos(attr)?;
        Ok(&self.dicts[pos].values)
    }

    /// Size of the global active domain of an attribute.  O(1).
    pub fn active_domain_size(&self, attr: AttrId) -> Result<usize> {
        Ok(self.domain(attr)?.len())
    }

    // ------------------------------------------------------------------
    // Grouping (shard-local kernel + shard-order merge)
    // ------------------------------------------------------------------

    /// Groups the concatenated tuples by their projection onto `attrs`,
    /// serially; bit-identical to [`Relation::group_ids`] on the collected
    /// flat relation.
    pub fn group_ids(&self, attrs: &AttrSet) -> Result<GroupIds> {
        self.group_ids_with(attrs, ThreadBudget::serial())
    }

    /// [`ShardedRelation::group_ids`] under a [`ThreadBudget`]: shards are
    /// grouped shard-locally (fanned out over up to `budget` workers, each
    /// shard running the ordinary flat kernel under its share of the
    /// budget) and the per-shard group tables are merged **in shard
    /// order** — the same discipline as the chunked kernel, so the result
    /// is bit-identical to the flat relation at any shard count and any
    /// budget.
    pub fn group_ids_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<GroupIds> {
        let positions = self.attr_positions(attrs)?;
        let k = positions.len();
        // Zero attributes: every row projects to the empty tuple.
        if k == 0 {
            return Ok(GroupIds::from_parts(
                attrs.clone(),
                vec![0; self.rows],
                if self.rows == 0 {
                    Vec::new()
                } else {
                    vec![self.rows as u64]
                },
                Vec::new(),
            ));
        }
        let spans = self.shard_spans(attrs, &positions, budget)?;
        let bits: Vec<u32> = positions
            .iter()
            .map(|&p| bit_width(self.dicts[p].values.len()))
            .collect();
        let (row_ids, counts, group_codes) =
            merge_spans(k, &bits, &spans, self.rows, budget.get())?;
        Ok(GroupIds::from_parts(
            attrs.clone(),
            row_ids,
            counts,
            group_codes,
        ))
    }

    /// The shard-local pass: one [`SpanGroups`] per shard, group codes
    /// remapped from the shard's local dictionaries into the global code
    /// space (row ids stay shard-local; the merge rewrites them).
    fn shard_spans(
        &self,
        attrs: &AttrSet,
        positions: &[usize],
        budget: ThreadBudget,
    ) -> Result<Vec<SpanGroups>> {
        let nshards = self.shards.len();
        let workers = budget.get().min(nshards).min(MAX_CHUNK_WORKERS);
        if workers <= 1 {
            return (0..nshards)
                .map(|s| self.span_for_shard(s, attrs, positions, budget))
                .collect();
        }
        // Fan out over the shards, work-stealing so a few large shards do
        // not stall the rest; each shard's kernel gets the per-worker share
        // of the budget (layers divide one budget, never multiply).
        let share = ThreadBudget::new((budget.get() / workers).max(1));
        let next = AtomicUsize::new(0);
        let slots: Vec<OnceSlot<Result<SpanGroups>>> =
            (0..nshards).map(|_| OnceSlot::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let s = next.fetch_add(1, Ordering::Relaxed);
                    if s >= nshards {
                        break;
                    }
                    let out = self.span_for_shard(s, attrs, positions, share);
                    slots[s]
                        .set(out)
                        .unwrap_or_else(|_| unreachable!("shard index claimed twice"));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("every shard slot is filled by exactly one worker")
            })
            .collect()
    }

    /// Groups one shard through the flat kernel and remaps its group codes
    /// into the global dictionaries.
    fn span_for_shard(
        &self,
        s: usize,
        attrs: &AttrSet,
        positions: &[usize],
        budget: ThreadBudget,
    ) -> Result<SpanGroups> {
        let ids = self.shards[s].local.group_ids_with(attrs, budget)?;
        let (row_ids, counts, local_codes) = ids.into_parts();
        let k = positions.len();
        let remap = &self.remaps[s];
        let mut group_codes = Vec::with_capacity(local_codes.len());
        for (j, &c) in local_codes.iter().enumerate() {
            group_codes.push(remap[positions[j % k]][c as usize]);
        }
        Ok(SpanGroups {
            row_ids,
            counts,
            group_codes,
        })
    }

    /// Groups by `attrs` and decodes the distinct groups through the global
    /// dictionaries; bit-identical to [`Relation::group_counts`] on the
    /// collected flat relation.
    pub fn group_counts(&self, attrs: &AttrSet) -> Result<GroupCounts> {
        self.group_counts_with(attrs, ThreadBudget::serial())
    }

    /// [`ShardedRelation::group_counts`] under a [`ThreadBudget`] (see
    /// [`ShardedRelation::group_ids_with`]).
    pub fn group_counts_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<GroupCounts> {
        let ids = self.group_ids_with(attrs, budget)?;
        Ok(self.decode_group_counts(&ids))
    }

    /// Decodes a [`GroupIds`] of this sharded relation into a
    /// [`GroupCounts`] through the global dictionaries.
    pub fn decode_group_counts(&self, ids: &GroupIds) -> GroupCounts {
        let positions = self
            .attr_positions(ids.attrs())
            .expect("grouping was built from this relation's attributes");
        let arity = positions.len();
        let groups = ids.num_groups();
        let mut keys: Vec<Value> = Vec::with_capacity(groups * arity);
        for g in 0..groups {
            for (j, &p) in positions.iter().enumerate() {
                let code = ids.group_codes()[g * arity + j];
                keys.push(self.dicts[p].values[code as usize]);
            }
        }
        GroupCounts::from_parts(
            ids.attrs().clone(),
            self.rows as u128,
            keys,
            ids.group_codes().to_vec(),
            ids.counts().to_vec(),
        )
    }

    // ------------------------------------------------------------------
    // Set semantics / projection
    // ------------------------------------------------------------------

    /// Projection `Π_Y(R)` with set semantics, as a flat [`Relation`]
    /// (distinct projections are almost always far smaller than the
    /// input); bit-identical to [`Relation::project`] on the collected
    /// flat relation.
    pub fn project(&self, attrs: &AttrSet) -> Result<Relation> {
        self.project_with(attrs, ThreadBudget::serial())
    }

    /// [`ShardedRelation::project`] under a [`ThreadBudget`].
    pub fn project_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<Relation> {
        let positions = self.attr_positions(attrs)?;
        let ids = self.group_ids_with(attrs, budget)?;
        let arity = positions.len();
        let mut out = Relation::with_capacity(attrs.as_slice().to_vec(), ids.num_groups())?;
        let mut buf: Vec<Value> = vec![0; arity];
        for g in 0..ids.num_groups() {
            for (j, &p) in positions.iter().enumerate() {
                buf[j] = self.dicts[p].values[ids.group_codes()[g * arity + j] as usize];
            }
            out.push_row(&buf)?;
        }
        Ok(out)
    }

    /// `true` if the concatenated tuples are pairwise distinct.
    pub fn is_set(&self) -> bool {
        let ids = self
            .group_ids(&self.attrs())
            .expect("own attributes are always present");
        ids.num_groups() == self.rows
    }

    /// The distinct tuples across all shards as a flat [`Relation`] (first
    /// occurrence kept, concatenation order preserved, columns in this
    /// relation's schema order) — row-for-row identical to
    /// [`Relation::distinct`] on the collected flat relation.
    pub fn distinct(&self) -> Relation {
        let attrs = self.attrs();
        let ids = self
            .group_ids(&attrs)
            .expect("own attributes are always present");
        // Group codes are in ascending-attribute order; `order[p]` is the
        // index within that order of the attribute at schema position `p`.
        let order: Vec<usize> = self
            .schema
            .iter()
            .map(|&a| {
                attrs
                    .as_slice()
                    .iter()
                    .position(|&b| b == a)
                    .expect("own schema is covered by own attribute set")
            })
            .collect();
        let arity = self.arity();
        let mut out = Relation::with_capacity(self.schema.clone(), ids.num_groups())
            .expect("own schema is duplicate-free");
        let mut buf: Vec<Value> = vec![0; arity];
        for g in 0..ids.num_groups() {
            let codes = ids.group_code(g);
            for (p, slot) in buf.iter_mut().enumerate() {
                *slot = self.dicts[p].values[codes[order[p]] as usize];
            }
            out.push_row(&buf)
                .expect("decoded group rows keep the relation's arity");
        }
        out
    }
}

impl Relation {
    /// Splits this relation into `n` contiguous, near-equal row shards
    /// (`n` is clamped to at least 1; when `n` exceeds the row count the
    /// surplus shards are empty), each a self-contained columnar
    /// [`RelationShard`] with its own dictionaries.
    ///
    /// The round trip [`ShardedRelation::collect`] reproduces this relation
    /// exactly, and every grouping over the shards is bit-identical to
    /// grouping this relation directly.
    pub fn into_shards(self, n: usize) -> Result<ShardedRelation> {
        let schema = self.schema().to_vec();
        let mut out = ShardedRelation::new(schema.clone())?;
        for (start, end) in chunk_bounds(self.len(), n.max(1)) {
            let mut shard = Relation::with_capacity(schema.clone(), end - start)?;
            for i in start..end {
                shard.push_row(self.row(i))?;
            }
            out.append_shard(shard)?;
        }
        Ok(out)
    }
}

impl GroupSource for ShardedRelation {
    fn schema(&self) -> &[AttrId] {
        ShardedRelation::schema(self)
    }

    fn num_rows(&self) -> usize {
        self.len()
    }

    fn active_domain_size(&self, attr: AttrId) -> Result<usize> {
        ShardedRelation::active_domain_size(self, attr)
    }

    fn group_counts(&self, attrs: &AttrSet) -> Result<Arc<GroupCounts>> {
        ShardedRelation::group_counts(self, attrs).map(Arc::new)
    }

    fn group_ids(&self, attrs: &AttrSet) -> Result<Arc<GroupIds>> {
        ShardedRelation::group_ids(self, attrs).map(Arc::new)
    }

    fn projection(&self, attrs: &AttrSet) -> Result<Arc<Relation>> {
        ShardedRelation::project(self, attrs).map(Arc::new)
    }
}

impl GroupKernel for ShardedRelation {
    fn group_counts_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<GroupCounts> {
        ShardedRelation::group_counts_with(self, attrs, budget)
    }

    fn group_ids_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<GroupIds> {
        ShardedRelation::group_ids_with(self, attrs, budget)
    }

    fn project_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<Relation> {
        ShardedRelation::project_with(self, attrs, budget)
    }
}

impl fmt::Display for ShardedRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShardedRelation(")?;
        for (i, a) in self.schema.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")[{} rows / {} shards]", self.rows, self.shards.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        Relation::from_rows(
            vec![AttrId(0), AttrId(1), AttrId(2)],
            &[
                &[5, 0, 9][..],
                &[5, 1, 9][..],
                &[7, 0, 8][..],
                &[7, 1, 8][..],
                &[5, 0, 9][..], // duplicate: multiset
            ],
        )
        .unwrap()
    }

    fn bag(ids: &[u32]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn into_shards_and_collect_roundtrip() {
        let flat = sample();
        for n in [1usize, 2, 3, 5, 9] {
            let sharded = flat.clone().into_shards(n).unwrap();
            assert_eq!(sharded.num_shards(), n);
            assert_eq!(sharded.len(), flat.len());
            let back = sharded.collect().unwrap();
            assert_eq!(back.len(), flat.len());
            assert_eq!(back.schema(), flat.schema());
            for (a, b) in back.iter_rows().zip(flat.iter_rows()) {
                assert_eq!(a, b);
            }
            // Dictionaries are reproduced exactly, not just the rows.
            for &attr in flat.schema() {
                assert_eq!(back.domain(attr).unwrap(), flat.domain(attr).unwrap());
                assert_eq!(
                    back.column_codes(attr).unwrap(),
                    flat.column_codes(attr).unwrap()
                );
            }
        }
    }

    #[test]
    fn global_dictionaries_match_flat_dictionaries() {
        let flat = sample();
        let sharded = flat.clone().into_shards(3).unwrap();
        for &attr in flat.schema() {
            assert_eq!(sharded.domain(attr).unwrap(), flat.domain(attr).unwrap());
            assert_eq!(
                sharded.active_domain_size(attr).unwrap(),
                flat.active_domain_size(attr).unwrap()
            );
        }
        assert!(sharded.domain(AttrId(9)).is_err());
    }

    #[test]
    fn grouping_is_bit_identical_to_flat() {
        let flat = sample();
        for n in [1usize, 2, 4, 7] {
            let sharded = flat.clone().into_shards(n).unwrap();
            for attrs in [
                AttrSet::empty(),
                bag(&[0]),
                bag(&[1]),
                bag(&[0, 2]),
                bag(&[0, 1, 2]),
            ] {
                let a = flat.group_ids(&attrs).unwrap();
                for budget in [ThreadBudget::serial(), ThreadBudget::new(4)] {
                    let b = sharded.group_ids_with(&attrs, budget).unwrap();
                    assert_eq!(a.row_ids(), b.row_ids(), "n={n} attrs={attrs}");
                    assert_eq!(a.counts(), b.counts(), "n={n} attrs={attrs}");
                    assert_eq!(a.group_codes(), b.group_codes(), "n={n} attrs={attrs}");
                }
                let ca = flat.group_counts(&attrs).unwrap();
                let cb = sharded.group_counts(&attrs).unwrap();
                assert_eq!(ca.total, cb.total);
                assert_eq!(ca.counts(), cb.counts());
                for g in 0..ca.num_groups() {
                    assert_eq!(ca.key(g), cb.key(g));
                    assert_eq!(ca.key_codes(g), cb.key_codes(g));
                }
            }
        }
    }

    #[test]
    fn projection_and_distinct_match_flat() {
        let flat = sample();
        let sharded = flat.clone().into_shards(2).unwrap();
        let attrs = bag(&[0, 1]);
        let pa = flat.project(&attrs).unwrap();
        let pb = sharded.project(&attrs).unwrap();
        assert_eq!(pa.len(), pb.len());
        for (a, b) in pa.iter_rows().zip(pb.iter_rows()) {
            assert_eq!(a, b);
        }
        let da = flat.distinct();
        let db = sharded.distinct();
        assert_eq!(da.len(), db.len());
        assert_eq!(da.schema(), db.schema());
        for (a, b) in da.iter_rows().zip(db.iter_rows()) {
            assert_eq!(a, b);
        }
        assert!(!sharded.is_set());
        assert!(flat.distinct().into_shards(2).unwrap().is_set());
    }

    #[test]
    fn append_shard_rejects_schema_mismatch() {
        let mut sharded = ShardedRelation::new(vec![AttrId(0), AttrId(1)]).unwrap();
        let wrong_set = Relation::new(vec![AttrId(0), AttrId(2)]).unwrap();
        assert!(sharded.append_shard(wrong_set).is_err());
        // Same attribute set, different column order: also rejected.
        let wrong_order = Relation::new(vec![AttrId(1), AttrId(0)]).unwrap();
        assert!(sharded.append_shard(wrong_order).is_err());
        let ok = Relation::from_rows(vec![AttrId(0), AttrId(1)], &[&[1, 2][..]]).unwrap();
        sharded.append_shard(ok).unwrap();
        assert_eq!(sharded.len(), 1);
        assert_eq!(sharded.shard(0).row_offset(), 0);
    }

    #[test]
    fn append_as_new_shard_extends_analysis_state() {
        // Appending a batch leaves prior shards untouched and the merged
        // grouping equals the flat relation over all rows seen so far.
        let schema = vec![AttrId(0), AttrId(1)];
        let mut sharded = ShardedRelation::new(schema.clone()).unwrap();
        let mut flat = Relation::new(schema.clone()).unwrap();
        let batches: Vec<Vec<[Value; 2]>> = vec![
            vec![[1, 10], [2, 10]],
            vec![],
            vec![[1, 20], [3, 30], [2, 10]],
            vec![[4, 10]],
        ];
        for batch in batches {
            let rows: Vec<&[Value]> = batch.iter().map(|r| &r[..]).collect();
            let shard = Relation::from_rows(schema.clone(), &rows).unwrap();
            for row in &batch {
                flat.push_row(row).unwrap();
            }
            sharded.append_shard(shard).unwrap();
            for attrs in [bag(&[0]), bag(&[1]), bag(&[0, 1])] {
                let a = flat.group_ids(&attrs).unwrap();
                let b = sharded.group_ids(&attrs).unwrap();
                assert_eq!(a.row_ids(), b.row_ids());
                assert_eq!(a.counts(), b.counts());
                assert_eq!(a.group_codes(), b.group_codes());
            }
        }
        assert_eq!(sharded.num_shards(), 4);
        assert_eq!(sharded.shard(2).row_offset(), 2);
    }

    #[test]
    fn empty_sharded_relation_behaves() {
        let sharded = ShardedRelation::new(vec![AttrId(0)]).unwrap();
        assert!(sharded.is_empty());
        assert_eq!(sharded.num_shards(), 0);
        assert!(sharded.is_set());
        let ids = sharded.group_ids(&bag(&[0])).unwrap();
        assert_eq!(ids.num_groups(), 0);
        assert_eq!(sharded.project(&bag(&[0])).unwrap().len(), 0);
        assert_eq!(sharded.collect().unwrap().len(), 0);
        // An empty relation still shards (into empty shards).
        let empty = Relation::new(vec![AttrId(0)])
            .unwrap()
            .into_shards(3)
            .unwrap();
        assert_eq!(empty.num_shards(), 3);
        assert!(empty.is_empty());
    }

    #[test]
    fn duplicate_schema_rejected() {
        assert!(ShardedRelation::new(vec![AttrId(0), AttrId(0)]).is_err());
    }

    /// Regression: a shard count far above `MAX_CHUNK_WORKERS` under a
    /// parallel budget must not fan the merge rewrite out one-thread-per-
    /// shard (the rewrite is capped and partitioned into contiguous runs) —
    /// and the result stays bit-identical to the flat kernel.
    #[test]
    fn thousands_of_shards_group_without_thread_explosion() {
        let schema = vec![AttrId(0), AttrId(1)];
        let mut flat = Relation::new(schema).unwrap();
        for i in 0..4000u32 {
            flat.push_row(&[i % 97, (i * i) % 53]).unwrap();
        }
        let sharded = flat.clone().into_shards(2000).unwrap();
        assert_eq!(sharded.num_shards(), 2000);
        let attrs = bag(&[0, 1]);
        let a = flat.group_ids(&attrs).unwrap();
        for budget in [ThreadBudget::serial(), ThreadBudget::new(8)] {
            let b = sharded.group_ids_with(&attrs, budget).unwrap();
            assert_eq!(a.row_ids(), b.row_ids());
            assert_eq!(a.counts(), b.counts());
            assert_eq!(a.group_codes(), b.group_codes());
        }
    }

    #[test]
    fn unknown_attribute_errors() {
        let sharded = sample().into_shards(2).unwrap();
        assert!(sharded.group_ids(&bag(&[9])).is_err());
        assert!(sharded.group_counts(&bag(&[9])).is_err());
        assert!(sharded.project(&bag(&[9])).is_err());
    }

    #[test]
    fn group_source_metadata_matches_flat() {
        let flat = sample();
        let sharded = flat.clone().into_shards(2).unwrap();
        assert_eq!(GroupSource::schema(&sharded), GroupSource::schema(&flat));
        assert_eq!(
            GroupSource::num_rows(&sharded),
            GroupSource::num_rows(&flat)
        );
        assert_eq!(GroupSource::attrs(&sharded), flat.attrs());
        assert_eq!(GroupSource::arity(&sharded), 3);
        assert_eq!(
            GroupSource::attr_positions(&sharded, &bag(&[0, 2])).unwrap(),
            vec![0, 2]
        );
        assert!(GroupSource::attr_positions(&sharded, &bag(&[9])).is_err());
    }

    #[test]
    fn display_mentions_rows_and_shards() {
        let sharded = sample().into_shards(2).unwrap();
        let s = format!("{sharded}");
        assert!(s.contains("5 rows"));
        assert!(s.contains("2 shards"));
    }
}
