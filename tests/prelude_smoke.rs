//! Workspace-level smoke test mirroring the `ajd::prelude` doc example in
//! `src/lib.rs` as a real `#[test]`, so the facade's re-export surface is
//! exercised even when doc tests are skipped.

use ajd::prelude::*;

#[test]
fn prelude_doc_example_runs_and_is_tight() {
    // Example 4.1 of the paper: a bijection relation R = {(a_i, b_i)}.
    let r = ajd::random::generators::bijection_relation(8);
    // The (acyclic) schema {{A},{B}} with a single-edge join tree.
    let schema = vec![AttrSet::singleton(AttrId(0)), AttrSet::singleton(AttrId(1))];
    let tree = JoinTree::from_acyclic_schema(&schema).unwrap();

    let report = Analyzer::new(&r).analyze(&tree).unwrap();
    // For this family the lower bound of Lemma 4.1 is tight:
    // J = log N = log(1 + rho).
    assert!((report.j_measure - (report.rho + 1.0).ln()).abs() < 1e-9);
    assert!((report.j_measure - (8f64).ln()).abs() < 1e-9);
}

#[test]
fn prelude_reexports_cover_every_layer() {
    // One call through each re-exported module family, so a broken re-export
    // fails here rather than in downstream code.

    // relation
    let r = ajd::random::generators::bijection_relation(4);
    assert_eq!(r.len(), 4);

    // jointree
    let schema = vec![AttrSet::singleton(AttrId(0)), AttrSet::singleton(AttrId(1))];
    let tree = JoinTree::from_acyclic_schema(&schema).unwrap();
    assert_eq!(count_acyclic_join(&r, &tree).unwrap(), 16);

    // info
    let h = entropy(&r, &AttrSet::singleton(AttrId(0))).unwrap();
    assert!((h - (4f64).ln()).abs() < 1e-9);
    assert!((j_measure(&r, &tree).unwrap() - (4f64).ln()).abs() < 1e-9);

    // bounds
    assert!((j_lower_bound_on_loss((4f64).ln()) - 3.0).abs() < 1e-9);

    // core: discovery config default is constructible.
    let _ = DiscoveryConfig::default();
}
