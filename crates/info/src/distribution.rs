//! The tree-factorised distribution `P^T` and the KL-divergence to it.
//!
//! Proposition 3.1 (eq. 10): a distribution `P` models a join tree `T`
//! (Definition 2.2) iff it equals
//!
//! ```text
//! P^T(x) = Π_i P[Ωᵢ](x[Ωᵢ]) / Π_i P[Δᵢ](x[Δᵢ])
//! ```
//!
//! where the `Ωᵢ` are the bags of `T` and the `Δᵢ` its edge separators.
//! Theorem 3.2 states `J(T) = min_{Q ⊨ T} D_KL(P ‖ Q) = D_KL(P ‖ P^T)`.
//!
//! [`TreeFactoredDistribution`] evaluates `P^T` for the empirical
//! distribution of a relation, and [`kl_divergence_to_tree`] computes
//! `D_KL(P_R ‖ P_R^T)` directly from counts so that the Theorem 3.2 identity
//! can be verified numerically (it is also exploited by the analysis crate
//! as a cross-check on the J-measure computation).

use ajd_jointree::JoinTree;
use ajd_relation::{GroupCounts, GroupSource, RelationError, Result, Value};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Marginal counts of a relation on the bags and separators of a join tree,
/// together with the plumbing needed to evaluate `P^T` on tuples.
///
/// The marginals are held as shared [`GroupCounts`] handles, so a
/// distribution built over a caching [`GroupSource`] (an `AnalysisContext`,
/// via `ajd_core::Analyzer`) aliases the cache instead of copying counts.
#[derive(Debug, Clone)]
pub struct TreeFactoredDistribution {
    /// Number of tuples of the underlying relation.
    n: u64,
    /// Per-bag marginal counts and the bag's column positions in the source
    /// relation's schema.
    bag_counts: Vec<(Vec<usize>, Arc<GroupCounts>)>,
    /// Per-separator marginal counts and column positions.
    sep_counts: Vec<(Vec<usize>, Arc<GroupCounts>)>,
}

/// Summary of a KL-divergence computation between the empirical distribution
/// and its tree factorisation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KlReport {
    /// `D_KL(P_R ‖ P_R^T)` in nats.
    pub kl_nats: f64,
    /// Number of distinct tuples of `R` the sum ranged over.
    pub support_size: usize,
}

impl TreeFactoredDistribution {
    /// Builds the factorisation of the empirical distribution of the source
    /// relation along `tree`.
    ///
    /// The join tree's attributes must be exactly the relation's attributes
    /// (otherwise `P^T` is a distribution over a different variable set and
    /// the KL-divergence is not defined tuple-wise).  Over a caching
    /// [`GroupSource`] the bag and separator marginals are the same counts
    /// the J-measure of the tree needs, so computing both costs one grouping
    /// pass per attribute set.
    pub fn new<S: GroupSource>(src: &S, tree: &JoinTree) -> Result<Self> {
        if src.is_empty() {
            return Err(RelationError::EmptyInput(
                "relation for tree-factorised distribution",
            ));
        }
        if tree.attributes() != src.attrs() {
            return Err(RelationError::SchemaMismatch {
                detail: format!(
                    "join tree attributes {} differ from relation attributes {}",
                    tree.attributes(),
                    src.attrs()
                ),
            });
        }
        let mut bag_counts = Vec::with_capacity(tree.num_nodes());
        for bag in tree.bags() {
            let pos = src.attr_positions(bag)?;
            let counts = src.group_counts(bag)?;
            bag_counts.push((pos, counts));
        }
        let mut sep_counts = Vec::with_capacity(tree.num_edges());
        for e in 0..tree.num_edges() {
            let sep = tree.separator(e);
            let pos = src.attr_positions(&sep)?;
            let counts = src.group_counts(&sep)?;
            sep_counts.push((pos, counts));
        }
        Ok(TreeFactoredDistribution {
            n: src.num_rows() as u64,
            bag_counts,
            sep_counts,
        })
    }

    /// Number of tuples `N` of the underlying relation.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Natural logarithm of `P^T(t)` for a tuple given in the **source
    /// relation's column order**.
    ///
    /// Returns `f64::NEG_INFINITY` if some bag marginal assigns the tuple
    /// probability zero (cannot happen for tuples of `R` itself).
    pub fn log_prob(&self, row: &[Value]) -> f64 {
        let n_ln = (self.n as f64).ln();
        let mut acc = 0.0f64;
        let mut key: Vec<Value> = Vec::new();
        for (pos, counts) in &self.bag_counts {
            key.clear();
            key.extend(pos.iter().map(|&p| row[p]));
            let c = counts.count_of(&key);
            if c == 0 {
                return f64::NEG_INFINITY;
            }
            acc += (c as f64).ln() - n_ln;
        }
        for (pos, counts) in &self.sep_counts {
            key.clear();
            key.extend(pos.iter().map(|&p| row[p]));
            let c = counts.count_of(&key);
            debug_assert!(c > 0, "separator marginal of a bag-supported tuple");
            acc -= (c as f64).ln() - n_ln;
        }
        acc
    }

    /// `P^T(t)` for a tuple in the source relation's column order.
    pub fn prob(&self, row: &[Value]) -> f64 {
        self.log_prob(row).exp()
    }
}

/// Computes `D_KL(P_R ‖ P_R^T)` in nats (the right-hand side of
/// Theorem 3.2), summing over the distinct tuples of `R`.
pub fn kl_divergence_to_tree<S: GroupSource>(src: &S, tree: &JoinTree) -> Result<f64> {
    Ok(kl_report(src, tree)?.kl_nats)
}

/// Like [`kl_divergence_to_tree`], additionally reporting the support size.
///
/// Over a caching [`GroupSource`] the full-relation group counts (also the
/// `H(Ω)` marginal) and every bag/separator marginal come from the cache.
pub fn kl_report<S: GroupSource>(src: &S, tree: &JoinTree) -> Result<KlReport> {
    let factored = TreeFactoredDistribution::new(src, tree)?;
    let attrs = src.attrs();
    let full = src.group_counts(&attrs)?;
    let n = src.num_rows() as f64;
    let mut kl = 0.0f64;
    // The grouped keys are in ascending-attribute order; log_prob expects the
    // source column order, so reorder via the positions of the grouped attrs.
    let positions = src.attr_positions(&attrs)?;
    let mut reordered = vec![0u32; src.arity()];
    for (key, count) in full.iter() {
        // `key[i]` is the value of the i-th attribute in ascending order,
        // which lives at column `positions[i]` of the source relation.
        for (i, &p) in positions.iter().enumerate() {
            reordered[p] = key[i];
        }
        let p_t = count as f64 / n;
        let log_q = factored.log_prob(&reordered);
        kl += p_t * (p_t.ln() - log_q);
    }
    Ok(KlReport {
        kl_nats: kl,
        support_size: full.num_groups(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jmeasure::j_measure;
    use ajd_relation::{AttrId, AttrSet, Relation};

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        let s: Vec<AttrId> = schema.iter().map(|&i| AttrId(i)).collect();
        Relation::from_rows(s, rows).unwrap()
    }

    fn bag(ids: &[u32]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    fn irregular_relation() -> Relation {
        rel(
            &[0, 1, 2, 3],
            &[
                &[0, 0, 0, 0],
                &[0, 1, 0, 1],
                &[0, 1, 1, 0],
                &[1, 0, 1, 1],
                &[1, 1, 0, 0],
                &[2, 0, 0, 1],
                &[2, 2, 1, 1],
                &[2, 2, 2, 0],
                &[3, 1, 2, 1],
            ],
        )
    }

    #[test]
    fn factored_probabilities_are_normalised_for_lossless_relation() {
        // For a relation that models the tree, P^T == P, so every tuple has
        // probability 1/N and the probabilities of R's tuples sum to 1.
        let mut rows = Vec::new();
        for a in 0..3u32 {
            for b in 0..2u32 {
                for c in 0..2u32 {
                    rows.push(vec![a, b, c]);
                }
            }
        }
        let r = rel(
            &[0, 1, 2],
            &rows.iter().map(Vec::as_slice).collect::<Vec<_>>(),
        );
        let t = JoinTree::new(vec![bag(&[0, 1]), bag(&[0, 2])], vec![(0, 1)]).unwrap();
        let f = TreeFactoredDistribution::new(&r, &t).unwrap();
        let mut total = 0.0;
        for row in r.iter_rows() {
            let p = f.prob(row);
            assert!((p - 1.0 / r.len() as f64).abs() < 1e-12);
            total += p;
        }
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kl_is_zero_iff_schema_is_lossless() {
        let mut rows = Vec::new();
        for a in 0..3u32 {
            for b in 0..2u32 {
                for c in 0..2u32 {
                    rows.push(vec![a, b, c]);
                }
            }
        }
        let lossless = rel(
            &[0, 1, 2],
            &rows.iter().map(Vec::as_slice).collect::<Vec<_>>(),
        );
        let t = JoinTree::new(vec![bag(&[0, 1]), bag(&[0, 2])], vec![(0, 1)]).unwrap();
        assert!(kl_divergence_to_tree(&lossless, &t).unwrap().abs() < 1e-12);

        // Drop a tuple: now lossy, KL > 0.
        rows.pop();
        let lossy = rel(
            &[0, 1, 2],
            &rows.iter().map(Vec::as_slice).collect::<Vec<_>>(),
        );
        assert!(kl_divergence_to_tree(&lossy, &t).unwrap() > 1e-9);
    }

    #[test]
    fn theorem_3_2_kl_equals_j_measure() {
        let r = irregular_relation();
        let trees = vec![
            JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap(),
            JoinTree::star(vec![bag(&[0, 1]), bag(&[0, 2]), bag(&[0, 3])]).unwrap(),
            JoinTree::new(
                vec![bag(&[0]), bag(&[1]), bag(&[2]), bag(&[3])],
                vec![(0, 1), (1, 2), (2, 3)],
            )
            .unwrap(),
            JoinTree::new(vec![bag(&[0, 1, 2]), bag(&[2, 3])], vec![(0, 1)]).unwrap(),
        ];
        for t in trees {
            let j = j_measure(&r, &t).unwrap();
            let kl = kl_divergence_to_tree(&r, &t).unwrap();
            assert!(
                (j - kl).abs() < 1e-9,
                "Theorem 3.2 violated: J={j} KL={kl} for tree {t}"
            );
        }
    }

    #[test]
    fn theorem_3_2_on_bijection_relation() {
        let n = 6u32;
        let rows: Vec<Vec<u32>> = (0..n).map(|i| vec![i, i]).collect();
        let r = rel(&[0, 1], &rows.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let t = JoinTree::new(vec![bag(&[0]), bag(&[1])], vec![(0, 1)]).unwrap();
        let kl = kl_divergence_to_tree(&r, &t).unwrap();
        assert!((kl - (n as f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn kl_report_counts_support() {
        let r = irregular_relation();
        let t = JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap();
        let rep = kl_report(&r, &t).unwrap();
        assert_eq!(rep.support_size, r.len());
        assert!(rep.kl_nats >= 0.0);
    }

    #[test]
    fn mismatched_attribute_sets_are_rejected() {
        let r = irregular_relation();
        let t = JoinTree::new(vec![bag(&[0, 1]), bag(&[1, 2])], vec![(0, 1)]).unwrap();
        assert!(TreeFactoredDistribution::new(&r, &t).is_err());
        assert!(kl_divergence_to_tree(&r, &t).is_err());
    }

    #[test]
    fn empty_relation_rejected() {
        let r = Relation::new(vec![AttrId(0), AttrId(1)]).unwrap();
        let t = JoinTree::new(vec![bag(&[0]), bag(&[1])], vec![(0, 1)]).unwrap();
        assert!(TreeFactoredDistribution::new(&r, &t).is_err());
    }

    #[test]
    fn log_prob_of_unsupported_tuple_is_neg_infinity() {
        let r = rel(&[0, 1], &[&[0, 0], &[1, 1]]);
        let t = JoinTree::new(vec![bag(&[0]), bag(&[1])], vec![(0, 1)]).unwrap();
        let f = TreeFactoredDistribution::new(&r, &t).unwrap();
        assert!(f.log_prob(&[5, 5]).is_infinite());
        // Spurious tuple (0,1) is in the support of P^T even though not in R.
        assert!(f.log_prob(&[0, 1]).is_finite());
        assert!((f.prob(&[0, 1]) - 0.25).abs() < 1e-12);
    }
}
