//! Database schemas (sets of attribute bags).
//!
//! A *schema* in the paper is a set `S = {Ω₁,…,Ω_m}` whose union is the full
//! attribute set `Ω`, with no bag contained in another (`Ωᵢ ⊄ Ωⱼ` for
//! `i ≠ j`).  A schema is *acyclic* if it admits a join tree
//! (Definition 2.1); acyclicity is decided by GYO reduction ([`crate::gyo`]).

use crate::gyo::{gyo_reduction, GyoOutcome};
use crate::tree::JoinTree;
use ajd_relation::{AttrSet, RelationError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A database schema: a collection of attribute bags over a universe `Ω`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    bags: Vec<AttrSet>,
}

impl Schema {
    /// Creates a schema from bags.
    ///
    /// Empty bags are rejected.  Duplicate bags are collapsed.  Bags that are
    /// contained in another bag are **kept** (call [`Schema::reduce`] to drop
    /// them), because some constructions (e.g. intermediate GYO states)
    /// legitimately contain them.
    pub fn new(bags: Vec<AttrSet>) -> Result<Self> {
        if bags.is_empty() {
            return Err(RelationError::EmptyInput("schema with no bags"));
        }
        if bags.iter().any(AttrSet::is_empty) {
            return Err(RelationError::EmptyInput("schema containing an empty bag"));
        }
        let mut dedup: Vec<AttrSet> = Vec::with_capacity(bags.len());
        for b in bags {
            if !dedup.contains(&b) {
                dedup.push(b);
            }
        }
        Ok(Schema { bags: dedup })
    }

    /// The bags `Ω₁,…,Ω_m`.
    pub fn bags(&self) -> &[AttrSet] {
        &self.bags
    }

    /// Number of bags `m`.
    pub fn len(&self) -> usize {
        self.bags.len()
    }

    /// `true` if the schema has no bags (cannot happen for a constructed
    /// schema, but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.bags.is_empty()
    }

    /// The full attribute set `Ω = ∪ᵢ Ωᵢ`.
    pub fn attributes(&self) -> AttrSet {
        self.bags
            .iter()
            .fold(AttrSet::empty(), |acc, b| acc.union(b))
    }

    /// Removes every bag that is contained in another bag, producing the
    /// *reduced* schema required by the paper's definition (`Ωᵢ ⊄ Ωⱼ`).
    pub fn reduce(&self) -> Schema {
        let mut kept: Vec<AttrSet> = Vec::with_capacity(self.bags.len());
        for (i, b) in self.bags.iter().enumerate() {
            let dominated = self.bags.iter().enumerate().any(|(j, other)| {
                if i == j {
                    return false;
                }
                // A bag is dropped if it is a subset of another bag; to break
                // the tie between equal bags keep the first occurrence.
                if b == other {
                    j < i
                } else {
                    b.is_subset_of(other)
                }
            });
            if !dominated {
                kept.push(b.clone());
            }
        }
        Schema { bags: kept }
    }

    /// `true` if no bag is contained in another.
    pub fn is_reduced(&self) -> bool {
        self.bags.iter().enumerate().all(|(i, b)| {
            !self
                .bags
                .iter()
                .enumerate()
                .any(|(j, other)| i != j && b.is_subset_of(other))
        })
    }

    /// Runs GYO reduction, reporting acyclicity and (if acyclic) a join tree.
    pub fn gyo(&self) -> GyoOutcome {
        gyo_reduction(&self.bags)
    }

    /// `true` if the schema is acyclic (admits a join tree).
    pub fn is_acyclic(&self) -> bool {
        self.gyo().is_acyclic()
    }

    /// Builds a join tree for this schema, if it is acyclic.
    pub fn join_tree(&self) -> Result<JoinTree> {
        match self.gyo() {
            GyoOutcome::Acyclic(tree) => Ok(tree),
            GyoOutcome::Cyclic { residual } => Err(RelationError::SchemaMismatch {
                detail: format!(
                    "schema is cyclic: GYO reduction left {} irreducible bag(s)",
                    residual.len()
                ),
            }),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Schema[")?;
        for (i, b) in self.bags.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bag(ids: &[u32]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn construction_validates_input() {
        assert!(Schema::new(vec![]).is_err());
        assert!(Schema::new(vec![AttrSet::empty()]).is_err());
        let s = Schema::new(vec![bag(&[0, 1]), bag(&[0, 1]), bag(&[1, 2])]).unwrap();
        assert_eq!(s.len(), 2); // duplicate collapsed
    }

    #[test]
    fn attributes_is_union_of_bags() {
        let s = Schema::new(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[3])]).unwrap();
        assert_eq!(s.attributes(), bag(&[0, 1, 2, 3]));
    }

    #[test]
    fn reduce_drops_contained_bags() {
        let s = Schema::new(vec![bag(&[0]), bag(&[0, 1]), bag(&[1, 2]), bag(&[2])]).unwrap();
        assert!(!s.is_reduced());
        let r = s.reduce();
        assert!(r.is_reduced());
        assert_eq!(r.len(), 2);
        assert!(r.bags().contains(&bag(&[0, 1])));
        assert!(r.bags().contains(&bag(&[1, 2])));
    }

    #[test]
    fn acyclic_path_schema() {
        // {AB, BC, CD} is acyclic (a path).
        let s = Schema::new(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap();
        assert!(s.is_acyclic());
        let t = s.join_tree().unwrap();
        assert_eq!(t.num_nodes(), 3);
    }

    #[test]
    fn cyclic_triangle_schema() {
        // {AB, BC, CA} is the classic cyclic triangle.
        let s = Schema::new(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 0])]).unwrap();
        assert!(!s.is_acyclic());
        assert!(s.join_tree().is_err());
    }

    #[test]
    fn reduced_schema_bound_on_bag_count() {
        // For a reduced acyclic schema, m <= |Omega| (Beeri et al.).
        let s = Schema::new(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3]), bag(&[3, 4])])
            .unwrap()
            .reduce();
        assert!(s.is_acyclic());
        assert!(s.len() <= s.attributes().len());
    }

    #[test]
    fn display_lists_bags() {
        let s = Schema::new(vec![bag(&[0, 1])]).unwrap();
        assert!(format!("{s}").contains("{X0,X1}"));
    }
}
