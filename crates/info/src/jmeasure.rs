//! Lee's J-measure of a join tree (eq. 7) and its Theorem 2.2 bounds.
//!
//! For a join tree `(T, χ)` and the empirical distribution of a relation
//! `R`:
//!
//! ```text
//! J(T, χ) = Σ_{v ∈ nodes} H(χ(v)) − Σ_{(v₁,v₂) ∈ edges} H(χ(v₁) ∩ χ(v₂)) − H(χ(T))
//! ```
//!
//! Theorem 2.1 (Lee): `R ⊨ AJD(S)` iff `J(S) = 0`.
//! Theorem 3.2 (this paper): `J(T) = D_KL(P_R ‖ P_R^T)` — verified
//! numerically in `ajd-info::distribution` and the workspace property tests.
//! Theorem 2.2 sandwiches `J(T)` between the maximum and the sum of the
//! conditional mutual informations of the ordered support MVDs.

use crate::entropy::entropy;
use crate::mutual::mvd_cmi;
use ajd_jointree::mvd::ordered_support;
use ajd_jointree::JoinTree;
use ajd_relation::{AttrSet, GroupSource, Result};
use serde::{Deserialize, Serialize};

/// Computes the J-measure `J(T)` of `tree` with respect to the empirical
/// distribution of the source relation, in nats.
///
/// Generic over [`GroupSource`]: with `&Relation` each bag, separator and
/// full-set entropy of eq. (7) is grouped from scratch; with a shared source
/// (an `AnalysisContext`, via `ajd_core::Analyzer`) those terms — which
/// recur massively across the candidate trees of a discovery sweep — are
/// answered from a memoized cache, so the sweep pays for each grouping once.
pub fn j_measure<S: GroupSource>(src: &S, tree: &JoinTree) -> Result<f64> {
    let mut total = 0.0;
    for bag in tree.bags() {
        total += entropy(src, bag)?;
    }
    for e in 0..tree.num_edges() {
        total -= entropy(src, &tree.separator(e))?;
    }
    total -= entropy(src, &tree.attributes())?;
    Ok(total)
}

/// Computes the J-measure of an acyclic schema given as bags, building a
/// join tree internally (Observation after eq. 7: `J` depends only on the
/// schema, not on the particular join tree).
pub fn j_measure_of_schema<S: GroupSource>(src: &S, bags: &[AttrSet]) -> Result<f64> {
    let tree = JoinTree::from_acyclic_schema(bags)?;
    j_measure(src, &tree)
}

/// The sandwich of Theorem 2.2:
/// `max_i I(Ω_{1:i-1}; Ω_{i:m} | Δᵢ) ≤ J(T) ≤ Σ_i I(Ω_{1:i-1}; Ω_{i:m} | Δᵢ)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JMeasureBounds {
    /// The maximum conditional mutual information over the ordered support
    /// (lower bound on `J`).
    pub max_cmi: f64,
    /// The J-measure itself.
    pub j: f64,
    /// The sum of conditional mutual informations over the ordered support
    /// (upper bound on `J`).
    pub sum_cmi: f64,
}

/// Evaluates Theorem 2.2 for the tree rooted at `root`: returns the lower
/// bound (max CMI), the J-measure, and the upper bound (sum of CMIs) of the
/// ordered support.
///
/// The CMIs of consecutive ordered-support MVDs share most of their entropy
/// terms (the `i`-th prefix union is the `(i+1)`-th left side), so a shared
/// [`GroupSource`] does roughly half the grouping work even for one tree.
pub fn j_measure_bounds<S: GroupSource>(
    src: &S,
    tree: &JoinTree,
    root: usize,
) -> Result<JMeasureBounds> {
    let rooted = tree.rooted(root)?;
    let support = ordered_support(&rooted);
    let mut max_cmi = 0.0f64;
    let mut sum_cmi = 0.0f64;
    for mvd in &support {
        let cmi = mvd_cmi(src, mvd)?;
        max_cmi = max_cmi.max(cmi);
        sum_cmi += cmi;
    }
    Ok(JMeasureBounds {
        max_cmi,
        j: j_measure(src, tree)?,
        sum_cmi,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutual::conditional_mutual_information;
    use ajd_relation::{AttrId, Relation};

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        let s: Vec<AttrId> = schema.iter().map(|&i| AttrId(i)).collect();
        Relation::from_rows(s, rows).unwrap()
    }

    fn bag(ids: &[u32]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    fn irregular_relation() -> Relation {
        rel(
            &[0, 1, 2, 3],
            &[
                &[0, 0, 0, 0],
                &[0, 1, 0, 1],
                &[0, 1, 1, 0],
                &[1, 0, 1, 1],
                &[1, 1, 0, 0],
                &[2, 0, 0, 1],
                &[2, 2, 1, 1],
                &[2, 2, 2, 0],
                &[3, 1, 2, 1],
            ],
        )
    }

    #[test]
    fn j_measure_of_two_bag_tree_is_cmi() {
        // For S = {XZ, XY}: J(S) = I(Z;Y | X)  (remark after eq. 7).
        let r = irregular_relation();
        let t = JoinTree::new(vec![bag(&[0, 1]), bag(&[0, 2])], vec![(0, 1)]).unwrap();
        let j = j_measure(&r, &t).unwrap();
        let cmi = conditional_mutual_information(&r, &bag(&[1]), &bag(&[2]), &bag(&[0])).unwrap();
        assert!((j - cmi).abs() < 1e-12);
    }

    #[test]
    fn j_measure_is_zero_for_lossless_schema() {
        // Full conditional product: MVD X0 ->> X1 | X2 holds.
        let mut rows = Vec::new();
        for a in 0..3u32 {
            for b in 0..2u32 {
                for c in 0..2u32 {
                    rows.push(vec![a, b, c]);
                }
            }
        }
        let r = rel(
            &[0, 1, 2],
            &rows.iter().map(Vec::as_slice).collect::<Vec<_>>(),
        );
        let t = JoinTree::new(vec![bag(&[0, 1]), bag(&[0, 2])], vec![(0, 1)]).unwrap();
        assert!(j_measure(&r, &t).unwrap().abs() < 1e-12);
    }

    #[test]
    fn j_measure_is_nonnegative() {
        let r = irregular_relation();
        let trees = vec![
            JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap(),
            JoinTree::star(vec![bag(&[0, 1]), bag(&[0, 2]), bag(&[0, 3])]).unwrap(),
            JoinTree::new(
                vec![bag(&[0]), bag(&[1]), bag(&[2]), bag(&[3])],
                vec![(0, 1), (1, 2), (2, 3)],
            )
            .unwrap(),
        ];
        for t in trees {
            assert!(j_measure(&r, &t).unwrap() >= -1e-12);
        }
    }

    #[test]
    fn j_measure_independent_of_tree_shape() {
        // For the MVD schema {XU, XV, XW} both the path X U - XV - XW and the
        // star around XU are join trees; J must be identical (eq. 7 remark).
        let r = rel(
            &[0, 1, 2, 3],
            &[
                &[0, 0, 0, 0],
                &[0, 1, 1, 0],
                &[0, 0, 1, 1],
                &[1, 1, 0, 1],
                &[1, 0, 1, 0],
                &[1, 1, 1, 1],
            ],
        );
        let bags = vec![bag(&[0, 1]), bag(&[0, 2]), bag(&[0, 3])];
        let path = JoinTree::path(bags.clone()).unwrap();
        let star = JoinTree::star(bags).unwrap();
        let jp = j_measure(&r, &path).unwrap();
        let js = j_measure(&r, &star).unwrap();
        assert!((jp - js).abs() < 1e-12);
    }

    #[test]
    fn j_measure_of_bijection_relation_is_ln_n() {
        // Example 4.1.
        let n = 13u32;
        let rows: Vec<Vec<u32>> = (0..n).map(|i| vec![i, i]).collect();
        let r = rel(&[0, 1], &rows.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let t = JoinTree::new(vec![bag(&[0]), bag(&[1])], vec![(0, 1)]).unwrap();
        let j = j_measure(&r, &t).unwrap();
        assert!((j - (n as f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn schema_api_matches_tree_api() {
        let r = irregular_relation();
        let bags = vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])];
        let t = JoinTree::path(bags.clone()).unwrap();
        let via_schema = j_measure_of_schema(&r, &bags).unwrap();
        let via_tree = j_measure(&r, &t).unwrap();
        assert!((via_schema - via_tree).abs() < 1e-12);
    }

    #[test]
    fn theorem_2_2_sandwich_holds() {
        let r = irregular_relation();
        let trees = vec![
            JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap(),
            JoinTree::star(vec![bag(&[0, 1]), bag(&[0, 2]), bag(&[0, 3])]).unwrap(),
        ];
        for t in trees {
            for root in 0..t.num_nodes() {
                let b = j_measure_bounds(&r, &t, root).unwrap();
                assert!(
                    b.max_cmi <= b.j + 1e-9,
                    "lower bound violated: {} > {}",
                    b.max_cmi,
                    b.j
                );
                assert!(
                    b.j <= b.sum_cmi + 1e-9,
                    "upper bound violated: {} > {}",
                    b.j,
                    b.sum_cmi
                );
            }
        }
    }

    #[test]
    fn j_measure_errors_on_unknown_attributes() {
        let r = rel(&[0, 1], &[&[0, 0]]);
        let t = JoinTree::new(vec![bag(&[0]), bag(&[7])], vec![(0, 1)]).unwrap();
        assert!(j_measure(&r, &t).is_err());
    }
}
