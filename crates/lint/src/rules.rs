//! The rule set: what each rule matches, where it applies, and why.
//!
//! Every rule is deliberately **mechanical**: it matches token patterns on
//! scrubbed source lines (see [`crate::lexer`]), not types.  That makes the
//! pass fast, dependency-free and predictable — and it means the rules are
//! calibrated to this workspace's idioms rather than to Rust in general.
//! Anything the pattern catches that is genuinely fine gets an inline
//! waiver (`// ajd: allow(rule-id, "reason")`), so every exception is
//! visible and justified in-tree.  The full catalog with examples lives in
//! `docs/LINTS.md`.

use crate::lexer::LineModel;

/// A single rule violation (or meta finding) at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (one of [`RULES`] or the meta rules
    /// `malformed-waiver` / `stale-waiver`).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Static description of one rule, for `--list-rules` and the docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// The waivable identifier.
    pub id: &'static str,
    /// One-line rationale.
    pub summary: &'static str,
}

/// Iterating a hash-keyed container yields platform/seed-dependent order.
pub const HASH_ITER_ORDER: &str = "hash-iter-order";
/// Saturating/wrapping arithmetic and narrowing casts silently corrupt
/// exact counts.
pub const SILENT_ARITHMETIC: &str = "silent-arithmetic";
/// The server must answer structured error frames, never panic.
pub const PANIC_IN_SERVER: &str = "panic-in-server";
/// All parallelism flows through `ThreadBudget` (parallel.rs).
pub const RAW_SPAWN: &str = "raw-spawn";
/// Kernel crates must not read clocks or ambient randomness.
pub const NONDETERMINISM_SOURCE: &str = "nondeterminism-source";
/// Blocking synchronisation flows through `ajd-sync`, never raw std or
/// parking_lot, so the model checker sees every decision point.
pub const RAW_SYNC_PRIMITIVE: &str = "raw-sync-primitive";
/// Crate roots must carry the workspace's safety/docs attributes.
pub const CRATE_HEADER_POLICY: &str = "crate-header-policy";
/// Meta rule: a waiver comment that does not parse.
pub const MALFORMED_WAIVER: &str = "malformed-waiver";
/// Meta rule: a waiver that suppresses nothing.
pub const STALE_WAIVER: &str = "stale-waiver";

/// All lintable rules, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: HASH_ITER_ORDER,
        summary: "iteration over FxHashMap/HashMap/HashSet in a determinism-critical crate \
                  without an adjacent sort",
    },
    RuleInfo {
        id: SILENT_ARITHMETIC,
        summary: "saturating_*/wrapping_* arithmetic or a narrowing cast of a count-like \
                  value on an exact-counting path",
    },
    RuleInfo {
        id: PANIC_IN_SERVER,
        summary: "unwrap/expect/panic!/indexing in non-test ajd-server code (errors must \
                  become protocol frames)",
    },
    RuleInfo {
        id: RAW_SPAWN,
        summary: "std::thread::spawn / thread::Builder outside parallel.rs (parallelism \
                  must flow through ThreadBudget)",
    },
    RuleInfo {
        id: NONDETERMINISM_SOURCE,
        summary: "Instant::now/SystemTime/ambient RNG inside a kernel crate",
    },
    RuleInfo {
        id: RAW_SYNC_PRIMITIVE,
        summary: "std::sync::{Mutex,Condvar,OnceLock,RwLock} or parking_lot outside \
                  crates/sync (blocking sync must flow through ajd-sync so the model \
                  checker can instrument it)",
    },
    RuleInfo {
        id: CRATE_HEADER_POLICY,
        summary: "crate root missing #![forbid(unsafe_code)] or the adopted missing_docs \
                  level",
    },
];

/// Crates whose first-appearance orderings are part of the public contract
/// (flat ≡ sharded bit-identity, deterministic wire frames).  `randrel` is
/// here because the estimation tier's seeded row samples flow through its
/// `sample_distinct`: a nondeterministic iteration order there would break
/// every `Estimate`'s reproducibility guarantee.
const DETERMINISM_CRATES: &[&str] = &["relation", "jointree", "info", "core", "server", "randrel"];
/// Crates on the exact ρ/J/loss counting path.
const COUNTING_CRATES: &[&str] = &["relation", "jointree", "info", "core", "server"];
/// Crates whose outputs must be reproducible bit-for-bit from inputs alone.
const KERNEL_CRATES: &[&str] = &["relation", "jointree", "info", "core", "randrel"];
/// Crates that have adopted `#![deny(missing_docs)]` (ratchet: once a crate
/// lands here it cannot regress to `warn`).
const MISSING_DOCS_DENY: &[&str] = &["relation", "core", "server", "lint", "sync", "model"];

/// A scrubbed file plus the path-derived facts the rules dispatch on.
pub struct FileModel {
    /// Workspace-relative path, `/` separators.
    pub path: String,
    /// Per-line scrubbed code (see [`crate::lexer::scrub`]).
    pub lines: Vec<LineModel>,
}

impl FileModel {
    /// The short crate name (`crates/relation/…` → `relation`; the root
    /// facade's `src`/`tests`/`examples` → `ajd`).
    pub fn crate_name(&self) -> &str {
        if let Some(rest) = self.path.strip_prefix("crates/") {
            rest.split('/').next().unwrap_or("")
        } else {
            "ajd"
        }
    }

    /// Whether the file is production source (under a `src/` directory) as
    /// opposed to integration tests, benches or examples.
    pub fn is_src(&self) -> bool {
        self.path.starts_with("src/") || self.path.contains("/src/")
    }

    fn file_name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Byte offsets of every occurrence of `pat` in `line`.
fn occurrences<'a>(line: &'a str, pat: &'a str) -> impl Iterator<Item = usize> + 'a {
    let mut from = 0;
    std::iter::from_fn(move || {
        let found = line[from..].find(pat)?;
        let at = from + found;
        from = at + pat.len();
        Some(at)
    })
}

/// The identifier (possibly a `self.field` style word) ending at byte
/// offset `end` of `line`, or `""`.
fn word_ending_at(line: &str, end: usize) -> &str {
    let bytes = line.as_bytes();
    let mut start = end;
    while start > 0 && is_ident_char(bytes[start - 1] as char) {
        start -= 1;
    }
    &line[start..end]
}

/// Runs every applicable rule over one file.
pub fn check_file(file: &FileModel) -> Vec<Finding> {
    let mut findings = Vec::new();
    crate_header_policy(file, &mut findings);
    hash_iter_order(file, &mut findings);
    silent_arithmetic(file, &mut findings);
    panic_in_server(file, &mut findings);
    raw_spawn(file, &mut findings);
    nondeterminism_source(file, &mut findings);
    raw_sync_primitive(file, &mut findings);
    findings
}

fn finding(file: &FileModel, line: usize, rule: &'static str, message: String) -> Finding {
    Finding {
        rule,
        path: file.path.clone(),
        line,
        message,
    }
}

// ---------------------------------------------------------------------
// crate-header-policy
// ---------------------------------------------------------------------

fn crate_header_policy(file: &FileModel, out: &mut Vec<Finding>) {
    if file.file_name() != "lib.rs" || !file.is_src() {
        return;
    }
    let has = |pat: &str| file.lines.iter().any(|l| l.scrubbed.contains(pat));
    if !has("#![forbid(unsafe_code)]") {
        out.push(finding(
            file,
            1,
            CRATE_HEADER_POLICY,
            "crate root is missing `#![forbid(unsafe_code)]` — the whole workspace is \
             safe Rust by policy"
                .to_owned(),
        ));
    }
    let deny_adopted = MISSING_DOCS_DENY.contains(&file.crate_name());
    if deny_adopted {
        if !has("#![deny(missing_docs)]") {
            out.push(finding(
                file,
                1,
                CRATE_HEADER_POLICY,
                format!(
                    "crate `{}` has adopted `#![deny(missing_docs)]` and its root must \
                     keep it (the docs ratchet never loosens)",
                    file.crate_name()
                ),
            ));
        }
    } else if !has("missing_docs") {
        out.push(finding(
            file,
            1,
            CRATE_HEADER_POLICY,
            "crate root carries no missing_docs lint at all; at least \
             `#![warn(missing_docs)]` is required"
                .to_owned(),
        ));
    }
}

// ---------------------------------------------------------------------
// hash-iter-order
// ---------------------------------------------------------------------

/// Type/constructor markers that bind a name to a hash-keyed container.
const HASH_MARKERS: &[&str] = &[
    "FxHashMap",
    "FxHashSet",
    "HashMap",
    "HashSet",
    "map_with_capacity",
    "set_with_capacity",
];

/// Methods whose results observe the container's internal order.
const ORDER_SENSITIVE: &[&str] = &[
    ".iter()",
    ".keys()",
    ".values()",
    ".drain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

/// Collects identifiers bound to hash containers: `let` bindings whose
/// declaring line mentions a hash marker, plus struct-field / parameter
/// style `name: …HashMap<…>` declarations.
fn hash_bound_names(file: &FileModel) -> Vec<String> {
    let mut names = Vec::new();
    for line in &file.lines {
        let s = &line.scrubbed;
        if !HASH_MARKERS.iter().any(|m| s.contains(m)) {
            continue;
        }
        if let Some(pos) = s.find("let ") {
            let rest = &s[pos + 4..];
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let ident: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
            if !ident.is_empty() {
                names.push(ident);
                continue;
            }
        }
        // Field / parameter declaration: `name: Type` where Type carries a
        // hash marker after the colon.
        let trimmed = s.trim_start();
        let trimmed = trimmed.strip_prefix("pub ").unwrap_or(trimmed);
        let ident: String = trimmed.chars().take_while(|&c| is_ident_char(c)).collect();
        if !ident.is_empty() {
            if let Some(colon) = trimmed[ident.len()..].strip_prefix(':') {
                if HASH_MARKERS.iter().any(|m| colon.contains(m)) {
                    names.push(ident);
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// `true` when the iteration's order-dependence is visibly neutralised:
/// the surrounding lines sort the result or collect into an ordered
/// (BTree) container.
fn order_neutralised(file: &FileModel, idx: usize) -> bool {
    file.lines[idx..file.lines.len().min(idx + 3)]
        .iter()
        .any(|l| l.scrubbed.contains("sort") || l.scrubbed.contains("BTree"))
}

fn hash_iter_order(file: &FileModel, out: &mut Vec<Finding>) {
    if !DETERMINISM_CRATES.contains(&file.crate_name()) || !file.is_src() {
        return;
    }
    let names = hash_bound_names(file);
    if names.is_empty() {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let s = &line.scrubbed;
        for name in &names {
            // `name.iter()` and friends, with a word boundary before name.
            for method in ORDER_SENSITIVE {
                let pat = format!("{name}{method}");
                for at in occurrences(s, &pat) {
                    // Word boundary: `self.build.iter()` matches (prev char
                    // is `.`), `rebuild.iter()` must not match `build`.
                    let bounded = at == 0 || !is_ident_char(s.as_bytes()[at - 1] as char);
                    if bounded && !order_neutralised(file, idx) {
                        out.push(finding(
                            file,
                            idx + 1,
                            HASH_ITER_ORDER,
                            format!(
                                "`{name}{method}` iterates a hash-keyed container whose \
                                 order is not deterministic; sort the result, iterate an \
                                 ordered mirror, or waive with a written reason"
                            ),
                        ));
                    }
                }
            }
            // `for … in name` / `for … in &name`.
            if let Some(for_pos) = s.find("for ") {
                if let Some(in_rel) = s[for_pos..].find(" in ") {
                    let expr = s[for_pos + in_rel + 4..].trim_start();
                    let expr = expr.strip_prefix("&mut ").unwrap_or(expr);
                    let expr = expr.strip_prefix('&').unwrap_or(expr);
                    if expr.starts_with(name.as_str())
                        && !expr[name.len()..]
                            .chars()
                            .next()
                            .is_some_and(|c| is_ident_char(c) || c == '.')
                        && !order_neutralised(file, idx)
                    {
                        out.push(finding(
                            file,
                            idx + 1,
                            HASH_ITER_ORDER,
                            format!(
                                "`for … in {name}` iterates a hash-keyed container whose \
                                 order is not deterministic; sort first or waive with a \
                                 written reason"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// silent-arithmetic
// ---------------------------------------------------------------------

const SILENT_OPS: &[&str] = &[
    ".saturating_add(",
    ".saturating_sub(",
    ".saturating_mul(",
    ".saturating_pow(",
    ".wrapping_add(",
    ".wrapping_sub(",
    ".wrapping_mul(",
    ".wrapping_pow(",
    ".wrapping_neg(",
    ".wrapping_shl(",
    ".wrapping_shr(",
];

/// Integer targets a count must never be silently narrowed into.
const NARROW_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize",
];

/// Identifier fragments that mark a value as count-carrying.
const COUNT_WORDS: &[&str] = &["count", "total", "size"];

fn silent_arithmetic(file: &FileModel, out: &mut Vec<Finding>) {
    if !COUNTING_CRATES.contains(&file.crate_name()) || !file.is_src() {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        let s = &line.scrubbed;
        // Saturating/wrapping calls are flagged even inside `#[cfg(test)]`
        // regions: a test helper that silently saturates a count corrupts
        // the very fixtures the overflow regressions depend on (the
        // original `g.total.saturating_add(c)` bug lived in a test helper).
        for op in SILENT_OPS {
            for _ in occurrences(s, op) {
                out.push(finding(
                    file,
                    idx + 1,
                    SILENT_ARITHMETIC,
                    format!(
                        "`{}` silently clamps or wraps; exact counting paths must use \
                         checked arithmetic and surface `CountOverflow` (waive only for \
                         hashing / capacity heuristics, with the reason written down)",
                        op.trim_start_matches('.').trim_end_matches('(')
                    ),
                ));
            }
        }
        // Narrowing casts are production-only: test assertions narrow
        // known-small literals all the time.
        if line.in_test {
            continue;
        }
        for at in occurrences(s, " as ") {
            let target: String = s[at + 4..]
                .chars()
                .take_while(|&c| is_ident_char(c))
                .collect();
            if !NARROW_TARGETS.contains(&target.as_str()) {
                continue;
            }
            let source = word_ending_at(s, at).to_ascii_lowercase();
            if COUNT_WORDS.iter().any(|w| source.contains(w)) {
                out.push(finding(
                    file,
                    idx + 1,
                    SILENT_ARITHMETIC,
                    format!(
                        "`{source} as {target}` can silently truncate a count; convert \
                         with checked/widening conversions or waive with the range \
                         argument written down"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// panic-in-server
// ---------------------------------------------------------------------

const PANIC_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".unwrap_err()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

fn panic_in_server(file: &FileModel, out: &mut Vec<Finding>) {
    if file.crate_name() != "server" || !file.is_src() {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let s = &line.scrubbed;
        for pat in PANIC_PATTERNS {
            for at in occurrences(s, pat) {
                // `self.expect(…)` is the JSON parser's own fallible
                // method, not Option/Result::expect.
                if *pat == ".expect(" && word_ending_at(s, at) == "self" {
                    continue;
                }
                out.push(finding(
                    file,
                    idx + 1,
                    PANIC_IN_SERVER,
                    format!(
                        "`{}` in non-test server code: a panic tears down the connection \
                         thread instead of answering a structured error frame",
                        pat.trim_start_matches('.').trim_end_matches('(')
                    ),
                ));
            }
        }
        // Indexing / slicing: `expr[…]` panics on out-of-bounds.
        for (i, c) in s.char_indices() {
            if c != '[' || i == 0 {
                continue;
            }
            let prev = s.as_bytes()[i - 1] as char;
            if is_ident_char(prev) || prev == ')' || prev == ']' {
                out.push(finding(
                    file,
                    idx + 1,
                    PANIC_IN_SERVER,
                    "indexing/slicing (`…[…]`) panics out of bounds in non-test server \
                     code; use `.get(…)` and answer an error frame, or waive with the \
                     bounds argument written down"
                        .to_owned(),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// raw-spawn
// ---------------------------------------------------------------------

fn raw_spawn(file: &FileModel, out: &mut Vec<Finding>) {
    if file.file_name() == "parallel.rs" && file.crate_name() == "relation" {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let s = &line.scrubbed;
        for pat in ["thread::spawn(", "thread::Builder"] {
            for _ in occurrences(s, pat) {
                out.push(finding(
                    file,
                    idx + 1,
                    RAW_SPAWN,
                    format!(
                        "`{pat}` bypasses `ThreadBudget`; all workspace parallelism is \
                         budgeted and flows through `ajd-relation`'s parallel.rs (scoped \
                         spawns under a budget-derived worker count are fine)"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// raw-sync-primitive
// ---------------------------------------------------------------------

/// Blocking std primitives and the `ajd-sync` name that replaces each.
const RAW_SYNC_PRIMITIVES: &[(&str, &str)] = &[
    ("Mutex", "Mutex"),
    ("Condvar", "Condvar"),
    ("OnceLock", "OnceSlot"),
    ("RwLock", "RwLock"),
];

fn raw_sync_primitive(file: &FileModel, out: &mut Vec<Finding>) {
    // `crates/sync` is the facade whose std backend these primitives live
    // in by design; everything else (including `crates/model`, whose
    // instrumentation layer carries explicit file-level waivers) must go
    // through `ajd-sync`.
    if file.crate_name() == "sync" {
        return;
    }
    // Tracks a multiline `use std::sync::{ … };` import: its continuation
    // lines name primitives without repeating the `std::sync::` path.
    let mut in_import = false;
    for (idx, line) in file.lines.iter().enumerate() {
        let s = &line.scrubbed;
        let line_in_import = in_import;
        if in_import && s.contains('}') {
            in_import = false;
        }
        if s.contains("use std::sync::{") && !s.contains('}') {
            in_import = true;
        }
        if line.in_test {
            continue;
        }
        for _ in occurrences(s, "parking_lot") {
            out.push(finding(
                file,
                idx + 1,
                RAW_SYNC_PRIMITIVE,
                "`parking_lot` is invisible to the model checker; use the `ajd-sync` \
                 facade, which routes through instrumented primitives under \
                 `--cfg ajd_model`"
                    .to_owned(),
            ));
        }
        // Catches direct paths (`std::sync::Mutex<T>`), single-line brace
        // imports (`use std::sync::{Arc, Mutex};`), and the continuation
        // lines of multiline ones.
        if !s.contains("std::sync::") && !line_in_import {
            continue;
        }
        for (prim, facade) in RAW_SYNC_PRIMITIVES {
            for at in occurrences(s, prim) {
                let before_ok = at == 0 || !is_ident_char(s.as_bytes()[at - 1] as char);
                let end = at + prim.len();
                let after_ok = end >= s.len() || !is_ident_char(s.as_bytes()[end] as char);
                if before_ok && after_ok {
                    out.push(finding(
                        file,
                        idx + 1,
                        RAW_SYNC_PRIMITIVE,
                        format!(
                            "`std::sync::{prim}` bypasses the `ajd-sync` facade; the \
                             model checker cannot see its acquire/wait/notify edges \
                             (use `ajd_sync::{facade}`)"
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// nondeterminism-source
// ---------------------------------------------------------------------

const NONDET_PATTERNS: &[&str] = &[
    "Instant::now(",
    "SystemTime",
    "thread_rng(",
    "from_entropy(",
    "rand::random",
    "RandomState",
];

fn nondeterminism_source(file: &FileModel, out: &mut Vec<Finding>) {
    if !KERNEL_CRATES.contains(&file.crate_name()) || !file.is_src() {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for pat in NONDET_PATTERNS {
            for _ in occurrences(&line.scrubbed, pat) {
                out.push(finding(
                    file,
                    idx + 1,
                    NONDETERMINISM_SOURCE,
                    format!(
                        "`{pat}` reads a clock or ambient randomness inside a kernel \
                         crate; kernel outputs must be a pure function of their inputs \
                         (seeded RNG and caller-supplied time are fine)"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique() {
        let mut ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }
}
