//! # ajd — Quantifying the Loss of Acyclic Join Dependencies
//!
//! Facade crate re-exporting the full public API of the workspace that
//! reproduces *"Quantifying the Loss of Acyclic Join Dependencies"*
//! (Kenig & Weinberger, PODS 2023).
//!
//! The individual crates are:
//!
//! * [`relation`] (`ajd-relation`) — the columnar, dictionary-encoded
//!   relation store: projections, grouping, joins, and the shared
//!   [`relation::AnalysisContext`] / [`relation::GroupSource`] layer.
//! * [`jointree`] (`ajd-jointree`) — acyclic schemas, join trees, GYO, MVD
//!   supports, acyclic join-size counting.
//! * [`info`] (`ajd-info`) — entropies, mutual information, KL divergence,
//!   the J-measure.
//! * [`random`] (`ajd-random`) — the random relation model and structured
//!   relation generators.
//! * [`bounds`] (`ajd-bounds`) — the paper's quantitative bounds.
//! * [`core`] (`ajd-core`) — the context-first [`core::Analyzer`] API:
//!   one owner for the cached state of a relation, one entry point for
//!   every measure, batch fan-out and approximate schema discovery — plus
//!   the sublinear estimation tier ([`core::EstimatedAnalyzer`]) behind
//!   the unified [`core::LossEngine`] API.
//! * [`server`] (`ajd-server`) — loss-as-a-service: a threaded TCP query
//!   front-end over a catalog of relations, speaking the line-delimited
//!   JSON protocol of `docs/PROTOCOL.md`, with budget-aware admission
//!   control and per-relation shared analysis caches.
//!
//! ## Quick start
//!
//! ```
//! use ajd::prelude::*;
//!
//! // Example 4.1 of the paper: a bijection relation R = {(a_i, b_i)}.
//! let r = ajd::random::generators::bijection_relation(8);
//! // The (acyclic) schema {{A},{B}} with a single-edge join tree.
//! let schema = vec![AttrSet::singleton(AttrId(0)), AttrSet::singleton(AttrId(1))];
//! let tree = JoinTree::from_acyclic_schema(&schema).unwrap();
//!
//! // One Analyzer owns the cache; every measure routes through it.
//! let analyzer = Analyzer::new(&r);
//! let report = analyzer.analyze(&tree).unwrap();
//! // For this family the lower bound of Lemma 4.1 is tight:
//! // J = log N = log(1 + rho).
//! assert!((report.j_measure - (report.rho + 1.0).ln()).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ajd_bounds as bounds;
pub use ajd_core as core;
pub use ajd_info as info;
pub use ajd_jointree as jointree;
pub use ajd_random as random;
pub use ajd_relation as relation;
pub use ajd_server as server;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use ajd_bounds::{
        epsilon_star, j_lower_bound_on_loss, loss_upper_bound_from_j, Thm51Params,
    };
    pub use ajd_core::{
        Analyzer, BatchAnalyzer, BoundKind, ConfidenceBounds, DiscoveryConfig, Estimate,
        EstimateConfig, EstimatedAnalyzer, LiveAnalyzer, LiveStats, LossEngine, LossReport,
        MvdLoss, SamplePlanner, SchemaMiner,
    };
    pub use ajd_info::{conditional_mutual_information, entropy, j_measure, kl_divergence_to_tree};
    pub use ajd_jointree::{count_acyclic_join, JoinTree, Mvd, Schema};
    pub use ajd_random::{generators, ProductDomain, RandomRelationModel};
    pub use ajd_relation::{
        AnalysisContext, AttrId, AttrSet, Catalog, GroupKernel, GroupSource, ReadOptions, Relation,
        RelationShard, ShardCacheStats, ShardPolicy, ShardedRelation, ShardedStore, Value,
    };
    pub use ajd_server::{RelationStore, Server, ServerConfig, ShutdownToken};
}
