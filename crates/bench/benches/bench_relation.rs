//! Micro-benchmarks of the relational substrate: projection, grouping,
//! pairwise hash join and semijoin, on random relations of realistic sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use ajd_random::generators::random_relation;
use ajd_relation::join::{count_natural_join, natural_join, semijoin};
use ajd_relation::{AttrSet, Relation};

fn make_relation(n: u64, dims: &[u64], seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    random_relation(&mut rng, dims, n).expect("relation fits the domain")
}

fn bench_projection(c: &mut Criterion) {
    let mut group = c.benchmark_group("relation/projection");
    for &n in &[10_000u64, 100_000] {
        let r = make_relation(n, &[64, 64, 64, 64], 1);
        let attrs = AttrSet::from_ids([0u32, 2]);
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &r, |b, r| {
            b.iter(|| r.project(&attrs))
        });
    }
    group.finish();
}

fn bench_group_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("relation/group_counts");
    for &n in &[10_000u64, 100_000] {
        let r = make_relation(n, &[64, 64, 64, 64], 2);
        let attrs = AttrSet::from_ids([1u32, 3]);
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &r, |b, r| {
            b.iter(|| r.group_counts(&attrs).unwrap())
        });
    }
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("relation/natural_join");
    for &n in &[10_000u64, 50_000] {
        // R(X0, X1) and S(X1, X2): join on the shared attribute X1.
        let r = make_relation(n, &[256, 256], 3);
        let mut rng = StdRng::seed_from_u64(4);
        let s_raw = random_relation(&mut rng, &[256, 256], n).unwrap();
        let mut s = Relation::new(vec![ajd_relation::AttrId(1), ajd_relation::AttrId(2)]).unwrap();
        for row in s_raw.iter_rows() {
            s.push_row(row).unwrap();
        }
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("materialised", n), &n, |b, _| {
            b.iter(|| natural_join(&r, &s).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("count_only", n), &n, |b, _| {
            b.iter(|| count_natural_join(&r, &s).unwrap())
        });
    }
    group.finish();
}

fn bench_semijoin(c: &mut Criterion) {
    let mut group = c.benchmark_group("relation/semijoin");
    let n = 50_000u64;
    let r = make_relation(n, &[512, 512], 5);
    let s = make_relation(n / 4, &[512, 512], 6);
    group.throughput(Throughput::Elements(n));
    group.bench_function("semijoin_50k", |b| b.iter(|| semijoin(&r, &s).unwrap()));
    group.finish();
}

criterion_group!(
    benches,
    bench_projection,
    bench_group_counts,
    bench_join,
    bench_semijoin
);
criterion_main!(benches);
