//! The production backend: thin wrappers over `std::sync` with a
//! poison-free API (like `parking_lot`'s), plus `std` re-exports for
//! atomics and threads.
//!
//! Poison-freedom is a deliberate policy, not a shortcut: a panic while
//! holding one of these locks is already a bug the panic itself reports,
//! and every protected structure in this workspace is either rebuilt
//! from scratch on retry or torn down with the panicking request — so
//! propagating `PoisonError` to every caller adds `expect` boilerplate
//! without adding safety.  Recovery is `PoisonError::into_inner`, exactly
//! as the `parking_lot` shim does.

use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, OnceLock, PoisonError, RwLock as StdRwLock,
};

/// A mutual-exclusion lock with a poison-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// An RAII guard for [`Mutex`]; releases the lock on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.  Never observes
    /// poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    /// Atomically releases `guard`'s mutex and waits for a notification,
    /// then re-acquires the mutex.  Spurious wakeups are permitted, as
    /// with `std`: re-check the condition in a loop or use
    /// [`Condvar::wait_while`].
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        MutexGuard {
            inner: self
                .inner
                .wait(guard.inner)
                .unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Waits until `condition` returns `false` (i.e. waits *while* it
    /// holds), re-checking on every wakeup.
    pub fn wait_while<'a, T, F>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: F,
    ) -> MutexGuard<'a, T>
    where
        F: FnMut(&mut T) -> bool,
    {
        while condition(&mut guard) {
            guard = self.wait(guard);
        }
        guard
    }

    /// Wakes one waiter, if any.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader–writer lock with a poison-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A write-once cell with single-flight initialisation (`get_or_init`
/// runs its closure at most once even when raced).
#[derive(Debug)]
pub struct OnceSlot<T> {
    inner: OnceLock<T>,
}

impl<T> Default for OnceSlot<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> OnceSlot<T> {
    /// Creates an empty slot.
    pub fn new() -> Self {
        OnceSlot {
            inner: OnceLock::new(),
        }
    }

    /// The value, if initialisation has completed.
    pub fn get(&self) -> Option<&T> {
        self.inner.get()
    }

    /// Returns the value, initialising it with `init` if the slot is
    /// empty; at most one caller ever runs `init`.
    pub fn get_or_init(&self, init: impl FnOnce() -> T) -> &T {
        self.inner.get_or_init(init)
    }

    /// Sets the value if the slot is empty; returns `Err(value)` if it
    /// was already set.
    pub fn set(&self, value: T) -> Result<(), T> {
        self.inner.set(value)
    }

    /// The value, through exclusive access (no locking needed).
    pub fn get_mut(&mut self) -> Option<&mut T> {
        self.inner.get_mut()
    }

    /// Consumes the slot and returns the value, if any.
    pub fn into_inner(self) -> Option<T> {
        self.inner.into_inner()
    }
}

impl<T: Clone> Clone for OnceSlot<T> {
    fn clone(&self) -> Self {
        OnceSlot {
            inner: self.inner.clone(),
        }
    }
}

/// Atomic types: plain `std::sync::atomic` re-exports.
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// Thread spawning: plain `std::thread` re-exports.
pub mod thread {
    pub use std::thread::{scope, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle};
}
