//! Serve a catalog of delimited files as a loss-analysis service.
//!
//! ```text
//! cargo run --release --example serve_catalog -- [flags] [FILE.csv ...]
//!
//!   --port P          listen on 127.0.0.1:P (default 4321)
//!   --shard-rows N    load each file sharded, N rows per shard (default: flat)
//!   --point-slots N   concurrent point queries (loss/j/entropy/analyze)
//!   --mine-slots N    concurrent mine sweeps
//!   --queue-depth N   waiters allowed per pool before `busy`
//!   --mine-threads N  kernel threads per admitted mine sweep
//!   --demo            no files, no flags needed: serve a built-in relation
//!                     on an ephemeral port, run a short scripted session
//!                     against it, and exit (used by CI)
//! ```
//!
//! Each `FILE.csv` (first line = attribute names) becomes a catalog entry
//! named after its file stem. The wire format is `docs/PROTOCOL.md`; try
//! `cargo run --release --example query_client -- 127.0.0.1:4321 '{"op":"catalog"}'`.

use ajd::prelude::*;
use ajd::server::{Client, RelationStore, Server, ServerConfig, ShutdownToken};
use std::net::TcpListener;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--demo") {
        demo();
        return;
    }

    let mut config = ServerConfig::default();
    let mut port: u16 = 4321;
    let mut shard_rows: Option<usize> = None;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut num = |what: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{what} needs a number"))
        };
        match arg.as_str() {
            "--port" => port = num("--port") as u16,
            "--shard-rows" => shard_rows = Some(num("--shard-rows")),
            "--point-slots" => config.admission.point_slots = num("--point-slots"),
            "--mine-slots" => config.admission.mine_slots = num("--mine-slots"),
            "--queue-depth" => config.admission.queue_depth = num("--queue-depth"),
            "--mine-threads" => config.admission.mine_threads = num("--mine-threads"),
            other => files.push(other.to_owned()),
        }
    }
    if files.is_empty() {
        eprintln!("no files given; run with --demo or pass CSV paths (see the example's docs)");
        std::process::exit(2);
    }

    let stores: Vec<RelationStore> = files
        .iter()
        .map(|file| {
            let name = Path::new(file)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| file.clone());
            let store = match shard_rows {
                Some(rows) => RelationStore::from_delimited_sharded(
                    &name,
                    file,
                    ReadOptions::default(),
                    ShardPolicy::RowCount(rows),
                ),
                None => RelationStore::from_delimited_path(&name, file, ReadOptions::default()),
            }
            .unwrap_or_else(|e| panic!("loading {file}: {e}"));
            println!(
                "loaded '{}': {} rows x {} attrs ({} shard(s))",
                store.name(),
                store.data().num_rows(),
                store.data().arity(),
                store.data().num_shards()
            );
            store
        })
        .collect();

    let server = Server::new(&stores, config).expect("catalog names must be unique");
    let listener = TcpListener::bind(("127.0.0.1", port)).expect("bind");
    println!(
        "serving {} relation(s) on {} (protocol: docs/PROTOCOL.md); Ctrl-C to stop",
        stores.len(),
        listener.local_addr().unwrap()
    );
    let shutdown = ShutdownToken::new();
    server.serve(listener, &shutdown);
}

/// Self-contained demo: serve one in-memory relation, query it over a real
/// socket, print the session, exit. Deterministic, no arguments, no files.
fn demo() {
    let mut csv = String::from("course,teacher,room\n");
    for i in 0..120 {
        // teacher is determined by course: {course,teacher},{course,room}
        // is lossless.
        csv.push_str(&format!("c{},t{},r{}\n", i % 6, i % 6, i % 4));
    }
    let stores = vec![
        RelationStore::from_delimited("courses", &csv, ReadOptions::default()).expect("demo csv"),
    ];
    let server = Server::new(&stores, ServerConfig::default()).expect("demo server");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().unwrap();
    let shutdown = ShutdownToken::new();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.serve(listener, &shutdown));
        let mut client = Client::connect(addr).expect("connect");
        for request in [
            r#"{"op":"catalog"}"#.to_owned(),
            r#"{"id":1,"op":"loss","relation":"courses","schema":[["course","teacher"],["course","room"]]}"#.to_owned(),
            r#"{"id":2,"op":"entropy","relation":"courses","attrs":["course"]}"#.to_owned(),
            r#"{"id":3,"op":"mine","relation":"courses","max_bag_size":2}"#.to_owned(),
            r#"{"op":"stats","relation":"courses"}"#.to_owned(),
        ] {
            println!("> {request}");
            let response = client.request_line(&request).expect("response");
            println!("< {response}");
            assert_eq!(
                response.get("ok").and_then(|o| o.as_bool()),
                Some(true),
                "demo request failed"
            );
        }
        // Drop the client first: the per-connection thread blocks on its
        // next read until the peer hangs up, and `serve` joins all
        // connection threads before returning.
        drop(client);
        shutdown.signal(addr);
        handle.join().unwrap();
    });
    println!("demo ok");
}
