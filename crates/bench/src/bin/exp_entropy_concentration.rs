//! Experiment `thm52_entropy` — Theorem 5.2 / Proposition 5.4: entropy
//! concentration under the degenerate random relation model.
//!
//! A set `S` of `η` tuples is drawn from `[d_A] × [d_B]` (here `d_A = d_B =
//! d`).  Proposition 5.4 bounds the *expected* deficit
//! `log d − E[H(A_S)] ≤ C(d) = 2·log d/√d`; Theorem 5.2 gives a
//! high-probability bound `log d − H(A_S) ≤ 20·√(d·log³(η/δ)/η)` under the
//! qualifying condition (40).  We measure the empirical deficit and compare
//! it to both bounds.

use ajd_bench::harness::{parallel_trials, ExperimentArgs};
use ajd_bench::stats::{fraction_where, Summary};
use ajd_bench::table::{f, Table};
use ajd_bounds::{c_of_d, thm52_entropy_deviation, thm52_qualifying_condition};
use ajd_info::entropy;
use ajd_random::RandomRelationModel;
use ajd_relation::{AttrId, AttrSet};

fn main() {
    let args = ExperimentArgs::from_env();
    let delta = 0.05f64;
    // Explicit (d, eta) configurations.  With d_A = d_B = d the qualifying
    // condition (40) needs d >~ 128*log(128 d / delta), i.e. d in the low
    // thousands; the final configuration demonstrates a qualified instance.
    let configs: Vec<(u64, u64)> = if args.quick {
        vec![(64, 1024), (64, 4096), (256, 8192)]
    } else {
        vec![
            (32, 512),
            (32, 1024),
            (64, 1024),
            (64, 4096),
            (128, 2048),
            (128, 16384),
            (256, 8192),
            (256, 65536),
            (2048, 4_100_000),
        ]
    };

    let mut table = Table::new(
        "Theorem 5.2 / Prop 5.4: entropy deficit log(d) - H(A_S) (nats)",
        &[
            "d",
            "eta",
            "qualified",
            "deficit_mean",
            "deficit_max",
            "C(d)",
            "thm52_bound",
            "violations",
        ],
    );

    for &(d, eta_raw) in &configs {
        {
            let eta = eta_raw.min(d * d); // cannot exceed the domain
            let deficits = parallel_trials(args.trials, args.seed ^ (d * 31 + eta), |_, rng| {
                let model = RandomRelationModel::degenerate(d, d).expect("domain");
                let r = model.sample(rng, eta).expect("eta <= d^2");
                let h = entropy(&r, &AttrSet::singleton(AttrId(0))).expect("entropy of A");
                (d as f64).ln() - h
            });
            let s = Summary::of(&deficits);
            let bound = thm52_entropy_deviation(d as f64, eta as f64, delta);
            let qualified = thm52_qualifying_condition(d as f64, eta as f64, delta);
            let violations = fraction_where(&deficits, |&x| x > bound);
            table.push_row(vec![
                d.to_string(),
                eta.to_string(),
                qualified.to_string(),
                f(s.mean),
                f(s.max),
                f(c_of_d(d as f64)),
                f(bound),
                format!("{violations:.3}"),
            ]);
        }
    }

    table.emit(args.csv_dir.as_deref(), "thm52_entropy");
    println!(
        "Paper's shape: the measured deficit is far below both C(d) (expected-value bound,\n\
         Prop 5.4) and the 20*sqrt(d log^3(eta/delta)/eta) high-probability bound (Thm 5.2);\n\
         violations must be 0.000, and the deficit shrinks as eta grows."
    );
}
